"""TPC-C database population.

The paper loads 10 warehouses with DBT-2's standard cardinalities (100,000
items / 100,000 stock rows per warehouse / 3,000 customers per district).
Those cardinalities exist to stress a server-class machine; the throughput
*ratios* between modes come from per-transaction write and fsync counts,
which are scale-independent.  The default :class:`TpccConfig` therefore
shrinks cardinalities to laptop-simulation scale; every count is
configurable back to spec values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import make_rng
from repro.sqlite.database import Connection
from repro.workloads.tpcc import schema


@dataclass(frozen=True)
class TpccConfig:
    """Cardinalities for the TPC-C database."""

    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 200
    initial_orders_per_district: int = 20
    seed: int = 7

    def spec_scale(self) -> "TpccConfig":  # pragma: no cover - heavy
        """The DBT-2 cardinalities the paper used (10 warehouses)."""
        return TpccConfig(
            warehouses=10,
            districts_per_warehouse=10,
            customers_per_district=3000,
            items=100_000,
            initial_orders_per_district=3000,
            seed=self.seed,
        )


class TpccLoader:
    """Creates the schema and loads the initial database state."""

    def __init__(self, db: Connection, config: TpccConfig | None = None) -> None:
        self.db = db
        self.config = config or TpccConfig()

    def load(self) -> None:
        rng = make_rng(self.config.seed, "tpcc-load")
        db = self.db
        for ddl in schema.TABLES:
            db.execute(ddl)
        for ddl in schema.INDEXES:
            db.execute(ddl)

        cfg = self.config
        db.execute("BEGIN")
        for i in range(1, cfg.items + 1):
            db.execute(
                "INSERT INTO item VALUES (?, ?, ?, ?, ?)",
                (schema.item_rowid(i), i, f"item-{i}", round(rng.uniform(1, 100), 2), "data"),
            )
        for w in range(1, cfg.warehouses + 1):
            db.execute(
                "INSERT INTO warehouse VALUES (?, ?, ?, ?, ?)",
                (schema.warehouse_id(w), w, f"wh-{w}", round(rng.uniform(0, 0.2), 4), 300_000.0),
            )
            for i in range(1, cfg.items + 1):
                db.execute(
                    "INSERT INTO stock VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (schema.stock_id(w, i), w, i, rng.randint(10, 100), 0, 0, "stock-data"),
                )
            for d in range(1, cfg.districts_per_warehouse + 1):
                next_o_id = cfg.initial_orders_per_district + 1
                db.execute(
                    "INSERT INTO district VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        schema.district_id(w, d),
                        w,
                        d,
                        f"district-{w}-{d}",
                        round(rng.uniform(0, 0.2), 4),
                        30_000.0,
                        next_o_id,
                    ),
                )
                for c in range(1, cfg.customers_per_district + 1):
                    db.execute(
                        "INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            schema.customer_id(w, d, c),
                            w,
                            d,
                            c,
                            f"LAST{c % 10}",
                            "GC",
                            -10.0,
                            10.0,
                            1,
                            "customer-data",
                        ),
                    )
                for o in range(1, cfg.initial_orders_per_district + 1):
                    c = rng.randint(1, cfg.customers_per_district)
                    ol_cnt = rng.randint(5, 15)
                    db.execute(
                        "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (schema.order_id(w, d, o), w, d, o, c, rng.randint(1, 10), ol_cnt, 0),
                    )
                    for number in range(1, ol_cnt + 1):
                        i = rng.randint(1, cfg.items)
                        db.execute(
                            "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                            (
                                schema.order_line_id(w, d, o, number),
                                w,
                                d,
                                o,
                                number,
                                i,
                                rng.randint(1, 10),
                                round(rng.uniform(1, 100), 2),
                                0,
                            ),
                        )
                    # The most recent third of orders are still undelivered.
                    if o > cfg.initial_orders_per_district * 2 // 3:
                        db.execute(
                            "INSERT INTO new_order VALUES (?, ?, ?, ?)",
                            (schema.new_order_id(w, d, o), w, d, o),
                        )
        db.execute("COMMIT")
