"""Background garbage collection: watermarks, hot/cold streams, wear leveling.

The seed model garbage-collects *inline*: when a channel's free pool runs
low, the host write that noticed it performs the whole stop-the-world pass —
every copyback read/program and the erase — before its own program starts.
That is faithful to the stock OpenSSD firmware but it puts a multi-
millisecond pause under an unlucky foreground write, which distorts the
latency side of the paper's figures at high space utilization.

:class:`BackgroundGC` replaces that pass (``FtlConfig.gc_mode =
"background"``) with the scheduling structure Dayan & Bonnet describe for
flash-resident page-mapping FTLs:

Paced per-block copyback jobs
    Reclaiming a victim is a :class:`GcJob` — a cursor over the victim's
    programmed pages.  Each background *step* relocates at most
    ``gc_copyback_pages_per_step`` pages and then yields, so foreground
    writes preempt a collection in flight.  Steps run inside a
    ``chip.overlap()`` region: their flash time is reserved on the owning
    channel's :class:`~repro.sim.events.ResourceTimeline` without blocking
    the clock, and a step is only taken when the channel's reserved backlog
    is within ``gc_idle_backlog_us`` — i.e. collections are scheduled into
    the channel's idle windows.

Watermark state machine
    Per channel: ``idle → background → urgent``.  Background collection
    engages when the free pool drops to ``gc_background_watermark`` blocks;
    the *urgent* state triggers at the page-granular headroom floor (one
    block's worth of erased pages — the same floor the inline collector
    maintains) and collects synchronously until the floor is restored,
    observing the stall into the ``ftl.gc.pause_us`` histogram.

Hot/cold write streams
    Each channel keeps two active blocks.  The FTL's own active block
    (which copybacks also append into) is the *cold* stream; data writes
    whose LPN has accumulated ``gc_hot_write_threshold`` writes — plus all
    map/meta/X-L2P table pages, which are rewritten on every flush — go to
    a *hot* active block.  Segregation concentrates invalidations, so
    victims carry fewer valid pages.

Wear leveling
    Every ``gc_wear_check_interval`` steps the erase-count spread is
    sampled; beyond ``gc_wear_spread_threshold`` the least-worn written
    block (cold data sits still exactly there) is migrated into the cold
    stream and erased, cycling it back into the allocation pool.

Safety: the job cursor only ever relocates pages through the owning FTL's
``_gc_oob`` / ``_apply_relocation`` hooks, so the X-L2P live-union
invariant (pages referenced by L2P *or any* X-L2P entry are never
reclaimed) holds at every preemption point — uncommitted transactional
copies keep their tid and their X-L2P entry is repointed, exactly as in
the inline pass.  With ``retain_versions > 1`` the live union also covers
version-chain entries (``OWNER_VERSION`` pages): copyback repoints the
chain entry in place, preserving chain order, and the relocated page keeps
its original OOB sequence number so replay never resurrects it as the
current copy.  The ``gc.*`` crash points below are swept by the ``ftl.gc``
verify layer; the version-chain edges by ``ftl.mvcc``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import FtlError, OutOfSpaceError
from repro.ftl.pagemap import OOB_DATA, OOB_MAP, OWNER_L2P
from repro.obs import DEFAULT_SIZE_BOUNDS
from repro.sim.crash import register_crash_point

CP_GC_VICTIM = register_crash_point(
    "gc.victim.selected", "ftl.gc", "background GC victim chosen, no copyback started"
)
CP_GC_COPYBACK = register_crash_point(
    "gc.copyback.page", "ftl.gc", "between page copybacks of a GC job"
)
CP_GC_ERASE = register_crash_point(
    "gc.erase.before", "ftl.gc", "GC job copybacks complete, victim erase pending"
)
CP_GC_WEAR = register_crash_point(
    "gc.wear.migrate", "ftl.gc", "between page migrations of a wear-leveling job"
)

GC_POLICIES = ("greedy", "fifo", "cost-benefit")


class GcState(enum.Enum):
    """Per-channel watermark state."""

    IDLE = "idle"
    BACKGROUND = "background"
    URGENT = "urgent"


@dataclass
class GcJob:
    """One victim block being reclaimed incrementally.

    ``cursor`` walks the victim's programmed pages; between steps the block
    is half-relocated but fully consistent — every still-owned page is
    reachable through its owning structure, every moved page already is.
    """

    victim: int
    cursor: int  # next ppn to examine
    end: int  # one past the victim's last programmed ppn
    moved: int = 0
    wear: bool = False  # wear-leveling migration (vs. space reclamation)


class BackgroundGC:
    """Background collector bound to one :class:`PageMappingFTL` (or XFTL).

    Owns no mapping state of its own: space bookkeeping (free pools, valid
    counts, owners) stays in the FTL; this class decides *when* and *what*
    to collect and drives the FTL's relocation primitives.
    """

    def __init__(self, ftl) -> None:
        self.ftl = ftl
        config = ftl.config
        if config.gc_policy not in GC_POLICIES:
            raise FtlError(
                f"unknown gc_policy {config.gc_policy!r}; expected one of {GC_POLICIES}"
            )
        geo = ftl.chip.geometry
        # Config scalars cached for the per-program scheduling path (the
        # config object never mutates after construction).
        self._hot_threshold = config.gc_hot_write_threshold
        self._background_watermark = config.gc_background_watermark
        self._idle_backlog_us = config.gc_idle_backlog_us
        self._pages_per_step = config.gc_copyback_pages_per_step
        self._wear_spread_threshold = config.gc_wear_spread_threshold
        self._wear_check_interval = config.gc_wear_check_interval
        self._states: list[GcState] = [GcState.IDLE] * geo.channels
        self._jobs: list[GcJob | None] = [None] * geo.channels
        self._hot_active: list[int | None] = [None] * geo.channels
        self._heat: dict[int, int] = {}  # lpn -> cumulative write count
        self._alloc_tick: dict[int, int] = {}  # block -> tick it left the pool
        self._tick = 0
        # Per channel: a global counter would lock wear checks onto one
        # channel's parity (host programs round-robin the channels, so any
        # interval sharing a factor with the channel count samples the same
        # channel forever).
        self._steps_since_wear_check = [0] * geo.channels
        obs = ftl.chip.obs
        self._obs_pause_us = obs.histogram("ftl.gc.pause_us")
        self._obs_copyback_pages = obs.histogram(
            "ftl.gc.copyback_pages", DEFAULT_SIZE_BOUNDS
        )
        self._obs_erase_spread = obs.histogram(
            "ftl.gc.erase_spread", DEFAULT_SIZE_BOUNDS
        )
        self._obs_transitions = {
            state: obs.counter(f"ftl.gc.transitions_to_{state.value}")
            for state in GcState
        }
        self._obs_background = obs.counter("ftl.gc.background_collections")
        self._obs_urgent = obs.counter("ftl.gc.urgent_collections")
        self._obs_wear = obs.counter("ftl.gc.wear_migrations")
        self._obs_hot_writes = obs.counter("ftl.gc.hot_stream_writes")
        self._obs_cold_writes = obs.counter("ftl.gc.cold_stream_writes")
        self._obs_trans_writes = obs.counter("ftl.gc.trans_stream_writes")

    # ------------------------------------------------------------ host path

    def host_program(self, data: Any, oob: tuple, channel: int) -> int:
        """Append one host-originated page; runs the GC machinery first."""
        ftl = self.ftl
        chip = ftl.chip
        self._tick += 1
        trans = ftl._cmt is not None and oob[0] == OOB_MAP
        # _classify, inlined (heat-map update on the data path).
        hot = False
        if not trans:
            threshold = self._hot_threshold
            if threshold > 0:
                if oob[0] != OOB_DATA:
                    hot = True
                else:
                    heat = self._heat
                    lpn = oob[1]
                    count = heat.get(lpn, 0) + 1
                    heat[lpn] = count
                    hot = count >= threshold
        self._step(channel)
        if trans:
            block = self._ensure_trans_stream_block(channel)
        else:
            block = self._ensure_stream_block(channel, hot)
        per = ftl._pages_per_block
        write_points = ftl._write_points
        ppn = block * per + write_points[block]
        chip.program(ppn, data, oob)
        if trans:
            self._obs_trans_writes.inc()
        else:
            (self._obs_hot_writes if hot else self._obs_cold_writes).inc()
            tenants = chip.tenants
            if tenants.enabled:
                tenants.note_stream_write(hot)
        if write_points[block] >= per:
            # A hot or translation write may have degraded onto the cold
            # block, so clear whichever stream(s) hold the filled block.
            if self._hot_active[channel] == block:
                self._hot_active[channel] = None
            if ftl._trans_active[channel] == block:
                ftl._trans_active[channel] = None
            if ftl._active_blocks[channel] == block:
                ftl._active_blocks[channel] = None
        return ppn

    def _classify(self, oob: tuple) -> bool:
        """Hot-stream decision for this program (updates the heat map)."""
        threshold = self.ftl.config.gc_hot_write_threshold
        if threshold <= 0:
            return False
        kind = oob[0]
        if kind != OOB_DATA:
            # Map/meta/X-L2P table pages are rewritten on every flush: the
            # hottest data on the device by construction.
            return True
        lpn = oob[1]
        count = self._heat.get(lpn, 0) + 1
        self._heat[lpn] = count
        return count >= threshold

    def _ensure_stream_block(self, channel: int, hot: bool) -> int:
        """Open (or reuse) the channel's hot or cold active block."""
        ftl = self.ftl
        per = ftl._pages_per_block
        write_points = ftl._write_points
        store = self._hot_active if hot else ftl._active_blocks
        active = store[channel]
        if active is not None and write_points[active] < per:
            return active
        if hot and ftl._gc_headroom_pages(channel) <= 2 * per:
            # Opening a hot block takes a free block out of GC headroom
            # (copybacks only ever target the cold stream), so the second
            # stream is strictly opportunistic: without two blocks of slack
            # beyond the urgent floor, degrade to the cold stream rather
            # than eroding the margin that keeps collection live.
            store[channel] = None
            return self._ensure_stream_block(channel, hot=False)
        free = ftl._free_by_channel[channel]
        if not free:
            self._collect_until_floor(channel, need_free_block=True)
        if not free:
            cold = ftl._active_blocks[channel]
            if hot and cold is not None and write_points[cold] < per:
                # Degraded: no block for a second stream — share the cold one.
                return cold
            raise OutOfSpaceError(f"no free blocks on channel {channel} after GC")
        block = free.pop()
        store[channel] = block
        ftl._alloc_order[channel].append(block)
        self._alloc_tick[block] = self._tick
        return block

    def _ensure_trans_stream_block(self, channel: int) -> int:
        """Open (or reuse) the channel's translation-block stream.

        Like the hot stream, strictly opportunistic: translation pages fall
        back to the cold stream rather than eroding GC headroom below two
        blocks of slack.
        """
        ftl = self.ftl
        per = ftl._pages_per_block
        write_points = ftl._write_points
        active = ftl._trans_active[channel]
        if active is not None and write_points[active] < per:
            return active
        if ftl._gc_headroom_pages(channel) <= 2 * per:
            ftl._trans_active[channel] = None
            return self._ensure_stream_block(channel, hot=False)
        free = ftl._free_by_channel[channel]
        if not free:
            self._collect_until_floor(channel, need_free_block=True)
        if not free:
            cold = ftl._active_blocks[channel]
            if cold is not None and write_points[cold] < per:
                return cold
            raise OutOfSpaceError(f"no free blocks on channel {channel} after GC")
        block = free.pop()
        ftl._trans_active[channel] = block
        ftl._alloc_order[channel].append(block)
        ftl._trans_blocks.add(block)
        self._alloc_tick[block] = self._tick
        return block

    # --------------------------------------------------- watermark machine

    def state_of(self, channel: int) -> GcState:
        return self._states[channel]

    def _set_state(self, channel: int, state: GcState) -> None:
        if self._states[channel] is state:
            return
        self._states[channel] = state
        self._obs_transitions[state].inc()

    def _step(self, channel: int) -> None:
        """One GC scheduling decision, taken before every host program."""
        ftl = self.ftl
        floor = ftl._pages_per_block
        watermark = self._background_watermark
        jobs = self._jobs
        free = ftl._free_by_channel[channel]
        if ftl._gc_headroom_pages(channel) <= floor:
            self._set_state(channel, GcState.URGENT)
            self._collect_until_floor(channel)
        elif jobs[channel] is not None or len(free) <= watermark:
            self._set_state(channel, GcState.BACKGROUND)
            if ftl.chip.channel_backlog_us(channel) <= self._idle_backlog_us:
                self._background_step(channel)
        else:
            self._set_state(channel, GcState.IDLE)
        self._maybe_wear_level(channel)
        # Settle the post-work state so observers see where the channel is.
        if ftl._gc_headroom_pages(channel) > floor:
            if jobs[channel] is None and len(free) > watermark:
                self._set_state(channel, GcState.IDLE)
            else:
                self._set_state(channel, GcState.BACKGROUND)

    def _idle_window(self, channel: int) -> bool:
        return self.ftl.chip.channel_backlog_us(channel) <= self._idle_backlog_us

    # ------------------------------------------------------------- jobs

    def _open_job(self, channel: int, victim: int, wear: bool = False) -> GcJob:
        ftl = self.ftl
        geo = ftl.chip.geometry
        used = ftl._write_points[victim]
        start = victim * geo.pages_per_block
        job = GcJob(victim=victim, cursor=start, end=start + used, wear=wear)
        self._jobs[channel] = job
        ftl.stats.gc_invocations += 1
        ftl._obs_gc_invocations.inc()
        if victim in ftl._trans_blocks:
            ftl.stats.gc_translation_collections += 1
            ftl._obs_gc_trans.inc()
        ftl._note_victim_valid(ftl._valid_count[victim], geo.pages_per_block)
        tenants = ftl.chip.tenants
        if tenants.enabled:
            # Cross-tenant collision accounting: a victim whose valid
            # pages belong to several tenants makes each pay copyback for
            # the others' heat.
            owners = ftl._owner
            tenants.note_gc_victim(
                tenants.owner_of(owner[1])
                for owner in map(owners.get, range(job.cursor, job.end))
                if owner is not None and owner[0] == OWNER_L2P
            )
        ftl.chip.crash_plan.hit(CP_GC_VICTIM)
        return job

    def _run_job(self, channel: int, job: GcJob, max_pages: int | None = None) -> bool:
        """Advance ``job``; returns True when the victim has been erased.

        With ``max_pages`` the job yields after that many copybacks — the
        preemption point where foreground writes interleave.  Without it
        the job runs to completion (the urgent path).
        """
        ftl = self.ftl
        chip = ftl.chip
        crash_plan = chip.crash_plan
        crash_point = CP_GC_WEAR if job.wear else CP_GC_COPYBACK
        owners = ftl._owner
        chip_read = chip.read
        l2p = ftl._l2p
        dirty_segments = ftl._dirty_segments
        valid_bitmap = ftl._valid_bitmap
        valid_counts = ftl._valid_count
        per = ftl._pages_per_block
        entries_per_page = ftl._map_entries_per_page
        program_for_gc = ftl._program_for_gc
        tenants = chip.tenants
        tenants_enabled = tenants.enabled
        moved_this_step = 0
        # Copyback counters batch across the slice; the try/finally keeps
        # them exact when a crash point fires mid-copyback (a read that
        # happened before the failure is still counted).
        reads = 0
        writes = 0
        try:
            while job.cursor < job.end:
                ppn = job.cursor
                owner = owners.get(ppn)
                if owner is None:
                    job.cursor += 1
                    continue
                if max_pages is not None and moved_this_step >= max_pages:
                    return False
                if crash_plan._points:
                    crash_plan.hit(crash_point)
                data = chip_read(ppn)
                reads += 1
                if owner[0] == OWNER_L2P:
                    # The dominant copyback case (committed host data),
                    # with _gc_oob / _drop_owner / _set_owner_raw /
                    # _apply_relocation inlined.  None of these hooks is
                    # overridden in-tree for OWNER_L2P pages; the generic
                    # path below stays authoritative for every other owner.
                    lpn = owner[1]
                    ftl._seq += 1
                    new_ppn = program_for_gc(
                        data, (OOB_DATA, lpn, ftl._seq, None), channel
                    )
                    writes += 1
                    if tenants_enabled:
                        tenants.note_copyback(lpn)
                    del owners[ppn]
                    valid_bitmap[ppn] = 0
                    valid_counts[ppn // per] -= 1
                    if new_ppn not in owners:
                        valid_bitmap[new_ppn] = 1
                        valid_counts[new_ppn // per] += 1
                    owners[new_ppn] = owner
                    l2p[lpn] = new_ppn
                    # The relocated mapping must reach flash at the next
                    # flush (see _apply_relocation for the rationale).
                    dirty_segments.add(lpn // entries_per_page)
                else:
                    new_ppn = program_for_gc(data, ftl._gc_oob(owner, ppn), channel)
                    writes += 1
                    ftl._drop_owner(ppn)
                    ftl._set_owner_raw(new_ppn, owner)
                    ftl._apply_relocation(owner, ppn, new_ppn)
                job.cursor += 1
                job.moved += 1
                moved_this_step += 1
        finally:
            if reads:
                ftl.stats.gc_copyback_reads += reads
                ftl._obs_gc_reads.inc(reads)
            if writes:
                ftl.stats.gc_copyback_writes += writes
                ftl._obs_gc_writes.inc(writes)
        if crash_plan._points:
            crash_plan.hit(CP_GC_ERASE)
        chip.erase(job.victim)
        ftl._trans_blocks.discard(job.victim)
        ftl._free_by_channel[channel].append(job.victim)
        # Wear-aware allocation: keep the pool sorted most-worn-first, so
        # ``pop()`` (how both streams and copybacks draw blocks) always
        # hands out the least-worn free block.  Without this, LIFO reuse
        # parks cold blocks in the pool forever and leveling cannot narrow
        # the erase-count spread.
        counts = chip.state.erase_counts
        ftl._free_by_channel[channel].sort(key=lambda block: -counts[block])
        try:
            ftl._alloc_order[channel].remove(job.victim)
        except ValueError:
            pass
        self._alloc_tick.pop(job.victim, None)
        self._jobs[channel] = None
        self._obs_copyback_pages.observe(float(job.moved))
        return True

    def _background_step(self, channel: int) -> None:
        """Run one paced slice of collection during an idle window."""
        ftl = self.ftl
        job = self._jobs[channel]
        if job is None:
            victim = self._pick_victim(channel)
            if victim is None:
                return
            # Opening a job is only safe when its whole copyback fits in the
            # current headroom minus the urgent floor: host writes that
            # interleave with the paced job shrink headroom one page per
            # program, and the urgent path (which fires at the floor) must
            # always be able to finish the job synchronously.
            if ftl._valid_count[victim] > ftl._gc_headroom_pages(channel) - ftl._pages_per_block:
                return
            job = self._open_job(channel, victim)
        with ftl.chip.overlap():
            done = self._run_job(channel, job, max_pages=self._pages_per_step)
        if done:
            self._obs_background.inc()

    def _collect_until_floor(self, channel: int, need_free_block: bool = False) -> None:
        """Urgent/foreground collection: restore the page-granular floor.

        Mirrors the inline collector's termination semantics: collect while
        the headroom floor is breached (or, with ``need_free_block``, while
        the free pool is empty), bail out when nothing is reclaimable but
        some headroom remains, and raise :class:`OutOfSpaceError` only when
        truly wedged.  Runs synchronously — the stall is the foreground GC
        pause, observed into ``ftl.gc.pause_us``.
        """
        ftl = self.ftl
        geo = ftl.chip.geometry
        floor = geo.pages_per_block
        start_us = ftl.chip.clock.now_us
        collected = False
        guard = geo.total_pages + geo.num_blocks
        while (
            ftl._gc_headroom_pages(channel) <= floor
            or (need_free_block and not ftl._free_by_channel[channel])
        ):
            guard -= 1
            if guard < 0:
                raise OutOfSpaceError("garbage collection cannot make progress")
            job = self._jobs[channel]
            if job is None:
                victim = self._pick_victim(channel)
                if (
                    victim is None
                    or ftl._valid_count[victim] > ftl._gc_headroom_pages(channel)
                ):
                    if ftl._release_trans_block(channel):
                        continue  # the freed stream block may be reclaimable
                    if ftl._free_by_channel[channel] or ftl._gc_headroom_pages(channel) > 0:
                        break  # nothing reclaimable; live with what we have
                    raise OutOfSpaceError("no GC victim and no free blocks")
                job = self._open_job(channel, victim)
            self._run_job(channel, job)
            collected = True
            self._obs_urgent.inc()
            ftl.stats.gc_urgent_collections += 1
        if collected:
            self._obs_pause_us.observe(ftl.chip.clock.now_us - start_us)

    # --------------------------------------------------- victim selection

    def _excluded(self, channel: int) -> set[int | None]:
        job = self._jobs[channel]
        return {
            self.ftl._active_blocks[channel],
            self._hot_active[channel],
            self.ftl._trans_active[channel],
            job.victim if job is not None else None,
        }

    def _pick_victim(self, channel: int) -> int | None:
        policy = self.ftl.config.gc_policy
        if policy == "cost-benefit":
            return self._pick_cost_benefit(channel)
        if policy == "fifo":
            victim = self._pick_fifo(channel)
            if victim is not None:
                return victim
            # Explicit, counted fallback (see FtlConfig.gc_policy): FIFO
            # found nothing reclaimable in allocation-age order.
            self.ftl._obs_gc_fifo_fallbacks.inc()
        return self._pick_greedy(channel)

    def _reclaimable(self, block: int) -> bool:
        """Whether collecting ``block`` can gain at least one page."""
        ftl = self.ftl
        per = ftl._pages_per_block
        used = ftl._write_points[block]
        if used == 0:
            return False  # free or erased
        valid = ftl._valid_count[block]
        if valid >= used and used < per:
            return False  # partially-written block with nothing reclaimable
        return valid < per

    def _pick_greedy(self, channel: int) -> int | None:
        ftl = self.ftl
        per = ftl._pages_per_block
        write_points = ftl._write_points
        valid_counts = ftl._valid_count
        excluded = self._excluded(channel)
        best, best_valid = None, None
        for block in ftl.chip.geometry.channel_blocks(channel):
            if block in excluded:
                continue
            # _reclaimable, inlined: this scan runs per victim selection.
            used = write_points[block]
            if used == 0:
                continue
            valid = valid_counts[block]
            if (valid >= used and used < per) or valid >= per:
                continue
            if best_valid is None or valid < best_valid:
                best, best_valid = block, valid
        return best

    def _pick_fifo(self, channel: int) -> int | None:
        excluded = self._excluded(channel)
        for block in self.ftl._alloc_order[channel]:
            if block not in excluded and self._reclaimable(block):
                return block
        return None

    def _pick_cost_benefit(self, channel: int) -> int | None:
        """Rosenblum-style benefit/cost: ``age * (1 - u) / 2u``.

        ``u`` is the victim's valid fraction (copyback cost ``2u``: read +
        write per valid page, relative to the space gained ``1 - u``); age
        is measured in allocation ticks since the block left the free pool,
        so long-invalidated blocks beat freshly-written ones even at equal
        utilization.
        """
        ftl = self.ftl
        per = ftl._pages_per_block
        write_points = ftl._write_points
        valid_counts = ftl._valid_count
        alloc_tick_get = self._alloc_tick.get
        tick = self._tick
        excluded = self._excluded(channel)
        best, best_score = None, None
        for block in ftl.chip.geometry.channel_blocks(channel):
            if block in excluded:
                continue
            # _reclaimable, inlined: this scan runs per victim selection.
            used = write_points[block]
            if used == 0:
                continue
            valid = valid_counts[block]
            if (valid >= used and used < per) or valid >= per:
                continue
            age = tick - alloc_tick_get(block, 0)
            if valid == 0:
                score = float("inf")
            else:
                u = valid / used
                score = age * (1.0 - u) / (2.0 * u)
            if best_score is None or score > best_score:
                best, best_score = block, score
        return best

    # ------------------------------------------------------ wear leveling

    def _maybe_wear_level(self, channel: int) -> None:
        threshold = self._wear_spread_threshold
        if threshold <= 0:
            return
        checks = self._steps_since_wear_check
        count = checks[channel] + 1
        if count < self._wear_check_interval:
            checks[channel] = count
            return
        checks[channel] = 0
        ftl = self.ftl
        counts = ftl.chip.state.erase_counts
        spread = max(counts) - min(counts)
        self._obs_erase_spread.observe(float(spread))
        if spread < threshold:
            return
        if self._jobs[channel] is not None:
            return  # one job at a time per channel
        victim = self._pick_wear_victim(channel, min(counts))
        if victim is None:
            return
        # Wear victims may be fully valid: require a whole extra block of
        # slack beyond the urgent floor before taking one on.
        if ftl._valid_count[victim] > ftl._gc_headroom_pages(channel) - 2 * ftl._pages_per_block:
            return
        job = self._open_job(channel, victim, wear=True)
        ftl.stats.gc_wear_migrations += 1
        self._obs_wear.inc()
        with ftl.chip.overlap():
            self._run_job(channel, job, max_pages=self._pages_per_step)

    def _pick_wear_victim(self, channel: int, global_min: int) -> int | None:
        """Least-worn written block on ``channel`` — where cold data sits.

        Only blocks at the very low end of the global erase distribution
        qualify: migrating an averagely-worn block would churn pages
        without narrowing the spread.
        """
        ftl = self.ftl
        excluded = self._excluded(channel)
        counts = ftl.chip.state.erase_counts
        write_points = ftl._write_points
        best, best_count = None, None
        for block in ftl.chip.geometry.channel_blocks(channel):
            if block in excluded:
                continue
            if write_points[block] == 0:
                continue  # erased blocks already cycle through the pool
            if counts[block] > global_min + 1:
                continue
            if best_count is None or counts[block] < best_count:
                best, best_count = block, counts[block]
        return best

    # ------------------------------------------------------------- power

    def reset(self) -> None:
        """Drop all volatile GC state (power loss / remount)."""
        geo = self.ftl.chip.geometry
        self._states = [GcState.IDLE] * geo.channels
        self._jobs = [None] * geo.channels
        self._hot_active = [None] * geo.channels
        self._heat = {}
        self._alloc_tick = {}
        self._steps_since_wear_check = [0] * geo.channels

    # --------------------------------------------------------- inspection

    def hot_active_blocks(self) -> list[int | None]:
        return list(self._hot_active)

    def job_of(self, channel: int) -> GcJob | None:
        return self._jobs[channel]

    def check_invariants(self) -> None:
        """GC-side consistency checks, called from the FTL's own."""
        ftl = self.ftl
        geo = ftl.chip.geometry
        for channel in range(geo.channels):
            hot = self._hot_active[channel]
            if hot is not None:
                if geo.channel_of_block(hot) != channel:
                    raise FtlError(f"hot active block {hot} not on channel {channel}")
                if hot == ftl._active_blocks[channel]:
                    raise FtlError(f"hot and cold streams share block {hot}")
                if hot in ftl._free_by_channel[channel]:
                    raise FtlError(f"hot active block {hot} also in the free pool")
            job = self._jobs[channel]
            if job is not None:
                if geo.channel_of_block(job.victim) != channel:
                    raise FtlError(f"GC job victim {job.victim} not on channel {channel}")
                if job.victim in ftl._free_by_channel[channel]:
                    raise FtlError(f"GC job victim {job.victim} already in the free pool")
                if job.victim in (hot, ftl._active_blocks[channel], ftl._trans_active[channel]):
                    raise FtlError(f"GC job victim {job.victim} is an active block")
                # Pages behind the cursor must have been relocated already.
                for ppn in range(job.victim * geo.pages_per_block, job.cursor):
                    if ppn in ftl._owner:
                        raise FtlError(
                            f"GC job on block {job.victim} left owned page {ppn} "
                            f"behind its cursor"
                        )
