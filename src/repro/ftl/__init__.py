"""Flash translation layers.

- :class:`~repro.ftl.pagemap.PageMappingFTL` — the baseline page-mapped FTL
  of the OpenSSD board: L2P table, greedy garbage collection, mapping-table
  persistence on write barriers.
- :class:`~repro.ftl.xftl.XFTL` — the paper's contribution: a transactional
  FTL layering an X-L2P table over the page-mapped FTL (tagged reads/writes,
  commit/abort commands, GC pinning, cheap crash recovery).
- :class:`~repro.ftl.atomic.AtomicWriteFTL` — Park et al.'s per-call atomic
  multi-page write (related-work baseline, §3.3).
- :class:`~repro.ftl.txflash.TxFlashFTL` — TxFlash-style cyclic-commit
  per-call atomic group writes (related-work baseline, §3.3).
- :class:`~repro.ftl.gc.BackgroundGC` — background garbage collection
  (``FtlConfig.gc_mode="background"``): paced copyback jobs on channel idle
  windows, watermark state machine, hot/cold write streams, wear leveling.
"""

from repro.ftl.base import Ftl, FtlConfig
from repro.ftl.pagemap import PageMappingFTL
from repro.ftl.xftl import XFTL
from repro.ftl.xl2p import TxStatus, XL2PEntry, XL2PTable
from repro.ftl.atomic import AtomicWriteFTL
from repro.ftl.txflash import TxFlashFTL
from repro.ftl.gc import BackgroundGC, GcJob, GcState

__all__ = [
    "Ftl",
    "FtlConfig",
    "PageMappingFTL",
    "XFTL",
    "TxStatus",
    "XL2PEntry",
    "XL2PTable",
    "AtomicWriteFTL",
    "TxFlashFTL",
    "BackgroundGC",
    "GcJob",
    "GcState",
]
