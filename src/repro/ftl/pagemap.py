"""Page-mapped FTL with greedy garbage collection.

This models the OpenSSD board's stock firmware (§5.3, §6.1):

- a page-granularity L2P mapping table held in controller DRAM;
- host writes are appended copy-on-write into an *active* block; the old
  physical copy of the logical page becomes invalid;
- when the free-block pool runs low, a greedy garbage collector picks the
  block with the fewest valid pages, copies its valid pages into the active
  block and erases it;
- on a multi-channel chip (:class:`~repro.flash.array.FlashArray`) the FTL
  keeps one active block, free pool and garbage collector *per channel*:
  host writes round-robin across channels so consecutive appends land on
  different channels and overlap, and GC is channel-local (victim and
  copyback target share a channel), so its read->program data dependencies
  serialize naturally on the channel's own timeline.  With one channel all
  of this degenerates to exactly the single-pool behaviour;
- a *write barrier* (the device-level effect of a host fsync / FUA) persists
  all dirty mapping-table chunks plus a fixed set of firmware metadata pages
  to flash.  This is the hidden cost that makes fsync-heavy hosts slow on
  the stock FTL, and the cost that X-FTL's commit command avoids.

Durability model
----------------
Each programmed page carries OOB metadata ``(kind, lpn, seq, tid)``.  A tiny
*root record* — modelling the FTL's reserved meta block, which the paper
assumes is updated atomically — points at the persisted map pages and stores
the sequence number as of the last barrier.  Remounting after power loss
loads the map pages from the root, then scans block OOB areas and replays
committed writes with newer sequence numbers.  Torn pages (power cut mid
program) are detected and skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import CorruptionError, FlashError, FtlError, OutOfSpaceError
from repro.flash.chip import FlashChip
from repro.flash.state import PAGE_PROGRAMMED
from repro.ftl.base import Ftl, FtlConfig
from repro.ftl.cmt import CachedMappingTable
from repro.obs import DEFAULT_SIZE_BOUNDS
from repro.sim.crash import register_crash_point

CP_BARRIER_MID = register_crash_point(
    "ftl.barrier.mid", "ftl.pagemap", "between mapping pages of a barrier flush"
)

# Owner kinds for physical pages (what structure keeps this page alive).
OWNER_L2P = "l2p"
OWNER_MAP = "map"
OWNER_META = "meta"
OWNER_XL2P_DATA = "xl2p"  # uncommitted transactional data (used by XFTL)
OWNER_XL2P_TABLE = "xl2p-table"  # persisted X-L2P table page (used by XFTL)
OWNER_RETIRED = "retired"  # superseded page still pinned by the durable root
OWNER_VERSION = "version"  # superseded committed page retained in a version chain

# OOB tid sentinel for GC-relocated retained versions: a relocated version
# keeps its *original* sequence number (so OOB replay never resurrects it as
# the current copy) and carries this tid, which by construction is never in
# any committed-tid set — recovery identifies version pages only through the
# persisted chains, never through replay.
VERSION_TID = -1

# OOB kinds.
OOB_DATA = "data"
OOB_MAP = "map"
OOB_META = "meta"
OOB_XL2P_TABLE = "xl2p-table"


@dataclass
class RootRecord:
    """The atomically-updated meta-block contents.

    Survives power loss by construction (the paper assumes the meta-block
    pointer update is atomic, §5.3).  Everything else in DRAM is volatile.
    """

    map_dir: dict[int, int] = field(default_factory=dict)  # segment -> ppn
    meta_dir: dict[int, int] = field(default_factory=dict)  # meta slot -> ppn
    seq: int = 0
    # Used by XFTL: physical pages of the persisted X-L2P table, and the set
    # of tids committed since the last full map checkpoint.
    xl2p_ppns: tuple[int, ...] = ()
    committed_tids: frozenset[int] = frozenset()
    # Multi-version X-L2P: the commit sequence counter as of the last root
    # publish.  Stays 0 on the single-version stack (retain_versions=1).
    commit_seq: int = 0

    def clone(self) -> "RootRecord":
        return RootRecord(
            map_dir=dict(self.map_dir),
            meta_dir=dict(self.meta_dir),
            seq=self.seq,
            xl2p_ppns=tuple(self.xl2p_ppns),
            committed_tids=frozenset(self.committed_tids),
            commit_seq=self.commit_seq,
        )


class SegmentedL2P(dict):
    """L2P mapping dict with per-translation-segment key buckets.

    ``_segment_entries`` used to filter the *whole* mapping per translation
    page (``for lpn, ppn in self._l2p.items() if lo <= lpn < hi``) — an
    O(L2P) scan per map flush that dominated barrier cost on aged devices.
    This subclass maintains, transparently at every mutation, an ordered
    key bucket per segment so a segment's entries enumerate in O(segment).

    Bucket order replicates plain-dict semantics exactly: a bucket holds
    its segment's entries in first-insertion order (re-assigning an
    existing lpn keeps its position; pop + re-insert moves it to the end),
    which is precisely the subsequence of ``dict.items()`` order the old
    filter produced — so persisted translation-page images stay
    bit-identical.  Buckets mirror the ppn values too, so a segment's
    image is just ``tuple(bucket.items())`` (one C-level call).

    Only the mutation paths the FTLs use are supported (``d[k] = v``,
    ``pop``, ``del``); the bulk mutators would silently desynchronize the
    buckets and are explicitly disabled.
    """

    __slots__ = ("entries_per_page", "segments")

    def __init__(self, entries_per_page: int) -> None:
        super().__init__()
        self.entries_per_page = entries_per_page
        self.segments: dict[int, dict[int, int]] = {}

    def __setitem__(self, lpn: int, ppn: int) -> None:
        segment = lpn // self.entries_per_page
        bucket = self.segments.get(segment)
        if bucket is None:
            bucket = self.segments[segment] = {}
        bucket[lpn] = ppn
        dict.__setitem__(self, lpn, ppn)

    def __delitem__(self, lpn: int) -> None:
        dict.__delitem__(self, lpn)
        segment = lpn // self.entries_per_page
        bucket = self.segments[segment]
        del bucket[lpn]
        if not bucket:
            del self.segments[segment]

    def pop(self, lpn, *default):
        if lpn in self:
            segment = lpn // self.entries_per_page
            bucket = self.segments[segment]
            del bucket[lpn]
            if not bucket:
                del self.segments[segment]
        return dict.pop(self, lpn, *default)

    def segment_items(self, segment: int) -> tuple:
        """This segment's ``(lpn, ppn)`` entries, in insertion order."""
        bucket = self.segments.get(segment)
        if not bucket:
            return ()
        return tuple(bucket.items())

    def _unsupported(self, *args, **kwargs):
        raise NotImplementedError(
            "bulk mutation would desynchronize SegmentedL2P's segment buckets"
        )

    update = _unsupported
    setdefault = _unsupported
    clear = _unsupported
    popitem = _unsupported
    __ior__ = _unsupported


class PageMappingFTL(Ftl):
    """Stock page-mapped FTL (see module docstring)."""

    def __init__(self, chip: FlashChip, config: FtlConfig | None = None) -> None:
        super().__init__(chip, config)
        geo = chip.geometry
        reserve = max(2, int(geo.num_blocks * self.config.overprovision))
        if geo.num_blocks - reserve < 1:
            raise FtlError("chip too small for overprovisioning reserve")
        self._exported_pages = (geo.num_blocks - reserve) * geo.pages_per_block
        # Power loss propagates from the crash plan: when an armed point
        # fires, the FTL drops its DRAM state without a manual power_fail().
        chip.crash_plan.subscribe(self.power_fail)

        self._powered = True
        # Volatile (DRAM) state.  The L2P map keeps per-segment key buckets
        # so translation-page flushes never scan the whole mapping.
        self._l2p: SegmentedL2P = SegmentedL2P(self.config.map_entries_per_page)
        self._owner: dict[int, tuple] = {}
        # Page/block state lives on the chip's BlockStateView; the FTL
        # aliases the arrays directly (their identity is stable — the view
        # mutates them in place) so hot loops index without dispatch.
        # ``_valid_count`` *is* ``chip.state.valid_counts``: owner
        # bookkeeping maintains it incrementally, GC reads it.
        state_view = chip.state
        self._valid_count: list[int] = state_view.valid_counts
        self._valid_bitmap = state_view.valid
        self._page_states = state_view.page_states
        self._write_points = state_view.write_points
        self._pages_per_block = geo.pages_per_block
        self._num_channels = geo.channels
        self._map_entries_per_page = self.config.map_entries_per_page
        # Space management is striped per channel: each channel has its own
        # free pool, active block and allocation-age order, so appends on
        # different channels never contend.  With channels == 1 this is the
        # single free pool / single active block of the stock firmware.
        self._free_by_channel: list[list[int]] = [
            list(geo.channel_blocks(channel)) for channel in range(geo.channels)
        ]
        self._alloc_order: list[list[int]] = [[] for _ in range(geo.channels)]
        self._active_blocks: list[int | None] = [None] * geo.channels
        self._write_channel = 0  # round-robin cursor for host/map appends
        self._seq = 0
        self._dirty_segments: set[int] = set()
        self._map_dir: dict[int, int] = {}
        self._meta_dir: dict[int, int] = {}
        # Durable root (atomic meta block).
        self._root = RootRecord()
        self._pending_retired: set[int] = set()
        # Victim valid-ratio running aggregate (bounded state: the per-victim
        # samples live in the ftl.gc.victim_valid_pages histogram, not in an
        # ever-growing list).
        self._gc_valid_ratio_sum = 0.0
        self._gc_valid_ratio_count = 0
        self._obs_gc_victim_valid = chip.obs.histogram(
            "ftl.gc.victim_valid_pages", DEFAULT_SIZE_BOUNDS
        )
        self._obs_barrier_us = chip.obs.histogram("ftl.barrier.latency_us")
        self._obs_gc_trans = chip.obs.counter("ftl.gc.translation_collections")
        # Demand-paged mapping (DFTL-style CMT, repro.ftl.cmt).  A capacity
        # of zero — or one covering every translation page of the exported
        # space — degenerates to the all-in-DRAM map: the cache can never
        # miss, so the machinery switches off wholesale and the seed path
        # stays bit-identical (tests/test_cmt_equivalence.py).
        if self.config.cmt_pages < 0:
            raise FtlError(f"cmt_pages must be >= 0, got {self.config.cmt_pages}")
        per_page = self.config.map_entries_per_page
        total_segments = -(-self._exported_pages // per_page)
        if 0 < self.config.cmt_pages < total_segments:
            self._cmt: CachedMappingTable | None = CachedMappingTable(
                self, self.config.cmt_pages, self.config.cmt_dirty_batch
            )
        else:
            self._cmt = None
        # Translation-block stream: with the CMT active, translation pages
        # get their own active block per channel so map and data pages do
        # not interleave (Dayan & Bonnet's translation blocks).
        self._trans_active: list[int | None] = [None] * geo.channels
        self._trans_blocks: set[int] = set()
        # Background GC (FtlConfig.gc_mode="background") owns space
        # management through repro.ftl.gc; the default "inline" mode keeps
        # the seed's stop-the-world collector on this class, bit for bit.
        if self.config.gc_mode == "background":
            from repro.ftl.gc import BackgroundGC  # deferred: gc imports pagemap

            self._gc: "BackgroundGC | None" = BackgroundGC(self)
        elif self.config.gc_mode == "inline":
            if self.config.gc_policy not in ("greedy", "fifo"):
                raise FtlError(
                    f"gc_policy {self.config.gc_policy!r} requires gc_mode='background'; "
                    f"inline GC supports 'greedy' and 'fifo'"
                )
            self._gc = None
        else:
            raise FtlError(
                f"unknown gc_mode {self.config.gc_mode!r}; expected 'inline' or 'background'"
            )

    # ------------------------------------------------------------ interface

    @property
    def exported_pages(self) -> int:
        return self._exported_pages

    @property
    def powered(self) -> bool:
        return self._powered

    def read(self, lpn: int) -> Any:
        self._check_power()
        self._check_lpn(lpn)
        if self._cmt is not None:
            self._cmt.access(lpn // self.config.map_entries_per_page)
        ppn = self._l2p.get(lpn)
        if ppn is None:
            return None  # unwritten logical page reads as zeros
        self.stats.host_page_reads += 1
        self._obs_host_reads.inc()
        return self.chip.read(ppn)

    def write(self, lpn: int, data: Any) -> None:
        # The hottest host-facing path: power/lpn checks, owner bookkeeping
        # and dirty marking are inlined (see _set_owner/_invalidate for the
        # reference semantics — none of these hooks is overridden in-tree).
        if not self._powered:
            raise FtlError("FTL is powered off")
        if not 0 <= lpn < self._exported_pages:
            raise FtlError(f"lpn {lpn} outside exported space (0..{self._exported_pages - 1})")
        if self._cmt is not None:
            # Updating the mapping is a read-modify of its translation
            # page, so residency comes first (may evict/write back).
            self._cmt.access(lpn // self._map_entries_per_page)
        self._seq += 1
        ppn = self._program(data, (OOB_DATA, lpn, self._seq, None))
        owners = self._owner
        per = self._pages_per_block
        old = self._l2p.get(lpn)
        if old is not None and owners.pop(old, None) is not None:
            self._valid_bitmap[old] = 0
            self._valid_count[old // per] -= 1
        self._l2p[lpn] = ppn
        if ppn in owners:
            raise FtlError(f"ppn {ppn} already owned by {owners[ppn]}")
        self._valid_bitmap[ppn] = 1
        self._valid_count[ppn // per] += 1
        owners[ppn] = (OWNER_L2P, lpn)
        self._dirty_segments.add(lpn // self._map_entries_per_page)
        self.stats.host_page_writes += 1
        self._obs_host_writes.inc()

    def trim(self, lpn: int) -> None:
        self._check_power()
        self._check_lpn(lpn)
        if self._cmt is not None:
            self._cmt.access(lpn // self.config.map_entries_per_page)
        old = self._l2p.pop(lpn, None)
        if old is not None:
            self._invalidate(old)
            self._mark_dirty(lpn)

    def barrier(self) -> None:
        """Persist dirty map chunks + firmware metadata (fsync cost center).

        Superseded map/meta pages are *retired* rather than invalidated
        immediately: they stay valid (GC-pinned) until the new root record
        is published, so a crash mid-barrier still finds every page the old
        root references.

        On a multi-channel array the flush fans out: map/meta pages are
        DRAM-sourced, so their programs round-robin across channels inside
        one overlap region, and the root is published only after
        ``chip.drain()`` — the cross-channel ordering point that preserves
        barrier durability semantics.
        """
        self._check_power()
        self.stats.barriers += 1
        self._obs_barriers.inc()
        start_us = self.chip.clock.now_us
        with self.obs.tracer.span("barrier", "ftl"):
            self.chip.clock.advance(self.chip.profile.barrier_overhead_us)
            # Publish the sequence number as of *before* the flush programs:
            # a GC pass triggered by one of them may relocate data pages,
            # and relocations carry fresh sequence numbers, so a snapshot
            # root.seq keeps them inside the OOB replay window.  (Publishing
            # the post-flush seq would instead require every re-dirtied
            # segment to be rewritten before the publish — an unbounded
            # flush/GC feedback loop on small, GC-pressured devices.)
            seq_snapshot = self._seq
            with self.chip.overlap():
                self._flush_map()
                self._flush_meta()
            self.chip.drain()
            self._publish_root(seq_snapshot)
            for ppn in list(self._pending_retired):
                self._invalidate(ppn)
            self._pending_retired.clear()
        self._obs_barrier_us.observe(self.chip.clock.now_us - start_us)

    # ------------------------------------------------------------- power

    def power_fail(self) -> None:
        """Drop all DRAM state.  The chip (and the root record) persist."""
        geo = self.chip.geometry
        self._powered = False
        self._l2p = SegmentedL2P(self.config.map_entries_per_page)
        self._owner = {}
        self.chip.state.clear_validity()
        self._free_by_channel = [[] for _ in range(geo.channels)]
        self._alloc_order = [[] for _ in range(geo.channels)]
        self._active_blocks = [None] * geo.channels
        self._write_channel = 0
        self._dirty_segments = set()
        self._map_dir = {}
        self._meta_dir = {}
        self._pending_retired = set()
        self._seq = 0
        self._trans_active = [None] * geo.channels
        self._trans_blocks = set()
        if self._cmt is not None:
            self._cmt.reset()
        if self._gc is not None:
            self._gc.reset()

    def remount(self) -> None:
        """Rebuild DRAM state from the root record plus an OOB scan."""
        if self._powered:
            raise FtlError("remount on a powered FTL")
        self._powered = True
        root = self._root
        self._map_dir = dict(root.map_dir)
        self._meta_dir = dict(root.meta_dir)
        self._seq = root.seq

        # 1. Load the persisted map pages.
        self._l2p = SegmentedL2P(self.config.map_entries_per_page)
        self._owner = {}
        for segment, ppn in self._map_dir.items():
            entries = self.chip.read(ppn)
            self._set_owner_raw(ppn, (OWNER_MAP, segment))
            # Entries are (lpn, ppn) pairs; the multi-version XFTL persists
            # (lpn, ppn, chain) triples — the chain tail is restored by the
            # subclass in _finish_remount, after OOB replay settles the
            # current mapping.
            for entry in entries:
                self._l2p[entry[0]] = entry[1]
        for slot, ppn in self._meta_dir.items():
            self._set_owner_raw(ppn, (OWNER_META, slot))
        stale: list[int] = []
        for lpn, ppn in self._l2p.items():
            # A persisted mapping can be stale: its physical page may have
            # been invalidated, erased and reused — possibly for one of the
            # very map/meta pages claimed above (their programs carry
            # sequence numbers past the published root.seq, so they can
            # postdate the stale mapping's correction).  Never let a stale
            # claim displace an established owner; for an overwritten lpn
            # the OOB replay below is guaranteed to carry the fresher
            # mapping.  A *trimmed* lpn has no fresher copy to correct it,
            # so an unowned target is verified against the page itself
            # before claiming — a mapping whose page is erased (or reused
            # under a different identity) is dropped, restoring the
            # trimmed read-as-zeros state instead of claiming dead flash.
            if ppn in self._owner:
                continue
            if self._page_states[ppn] == PAGE_PROGRAMMED:
                # Kind-agnostic identity check: every data OOB layout in the
                # FTL family (OOB_DATA, SCC, WAL, ...) carries the lpn in
                # slot 1, so a programmed page whose OOB names this lpn is a
                # genuine copy of it.
                oob = self.chip.read_oob(ppn)
                if oob is not None and len(oob) >= 2 and oob[1] == lpn:
                    self._set_owner_raw(ppn, (OWNER_L2P, lpn))
                    continue
            stale.append(lpn)
        for lpn in stale:
            self._l2p.pop(lpn, None)
            self._mark_dirty(lpn)

        # 2. Replay newer writes found in OOB areas, in sequence order.
        # Dirty tracking restarts here, *before* the replay: each replayed
        # mapping re-dirties its segment so the next barrier persists it.
        # (Clearing after the replay — the old behaviour — left recovered
        # mappings clean, so a barrier advanced root.seq past their
        # sequence numbers without flushing them and a second crash lost
        # them.)
        self._dirty_segments = set()
        replay = sorted(self._scan_oob(min_seq=root.seq + 1), key=lambda e: e[0])
        for seq, kind, lpn, tid, ppn in replay:
            if seq > self._seq:
                self._seq = seq  # never reuse sequence numbers after a crash
            if kind != OOB_DATA:
                continue
            if not self._replay_applies(tid):
                continue
            self._remap_for_recovery(lpn, ppn)

        self._finish_remount()

        # 3. Rebuild validity counts and the free pool from ownership.
        self._rebuild_space_state()

    def _remap_for_recovery(self, lpn: int, ppn: int) -> None:
        """Point ``lpn`` at ``ppn`` during recovery.

        The previous mapping may be stale — a persisted map chunk can name a
        physical page that was since erased and reused by a *different*
        logical page — so its owner is only dropped when it really belongs
        to this lpn.
        """
        old = self._l2p.get(lpn)
        if old is not None and old != ppn and self._owner.get(old) == (OWNER_L2P, lpn):
            self._drop_owner(old)
        self._l2p[lpn] = ppn
        self._set_owner_raw(ppn, (OWNER_L2P, lpn))
        # The recovered mapping exists only in OOB + DRAM; dirty it so the
        # next barrier persists it (see remount step 2).
        self._mark_dirty(lpn)

    def _replay_applies(self, tid: int | None) -> bool:
        """Whether an OOB data entry with this tid survives recovery.

        The stock FTL has no transactions: only untagged writes exist.
        XFTL overrides this to consult the durable committed-tid set.
        """
        return tid is None

    def _finish_remount(self) -> None:
        """Hook for subclasses (XFTL reloads the X-L2P table here)."""

    # ------------------------------------------------------------ internals

    def _check_power(self) -> None:
        if not self._powered:
            raise FtlError("FTL is powered off")

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self._exported_pages:
            raise FtlError(f"lpn {lpn} outside exported space (0..{self._exported_pages - 1})")

    def _mark_dirty(self, lpn: int) -> None:
        self._dirty_segments.add(lpn // self.config.map_entries_per_page)

    def _set_owner(self, ppn: int, owner: tuple) -> None:
        if ppn in self._owner:
            raise FtlError(f"ppn {ppn} already owned by {self._owner[ppn]}")
        self._set_owner_raw(ppn, owner)

    def _set_owner_raw(self, ppn: int, owner: tuple) -> None:
        owners = self._owner
        if ppn not in owners:
            self._valid_bitmap[ppn] = 1
            self._valid_count[ppn // self._pages_per_block] += 1
        owners[ppn] = owner

    def _drop_owner(self, ppn: int) -> None:
        if self._owner.pop(ppn, None) is not None:
            self._valid_bitmap[ppn] = 0
            self._valid_count[ppn // self._pages_per_block] -= 1

    def _invalidate(self, ppn: int) -> None:
        self._drop_owner(ppn)

    # -------- space management ----------------------------------------

    def _pick_channel(self) -> int:
        """Round-robin channel for the next append (always 0 when serial)."""
        channel = self._write_channel
        self._write_channel = (channel + 1) % self.chip.geometry.channels
        return channel

    def _program(self, data: Any, oob: tuple, channel: int | None = None) -> int:
        """Append one page into a channel's active block, GCing if needed."""
        if channel is None:
            # _pick_channel, inlined (round-robin cursor).
            channel = self._write_channel
            self._write_channel = (channel + 1) % self._num_channels
        if self._gc is not None:
            # Background mode: the collector owns watermarks, hot/cold
            # stream selection and (paced or urgent) collection.
            return self._gc.host_program(data, oob, channel)
        # Keep at least one block's worth of erased pages per channel at all
        # times: any GC victim has at most pages_per_block - 1 valid pages,
        # so as long as a full block of headroom exists *before* each host
        # program, GC can always relocate a victim and make progress.
        # Waiting until the free pool is empty (the old behaviour) let the
        # host consume the copyback headroom page by page and wedge an
        # in-capacity workload.
        if self._gc_headroom_pages(channel) <= self._pages_per_block:
            self._garbage_collect(channel, target_blocks=0)
        if self._trans_stream_wanted(oob):
            block = self._ensure_trans_block(channel)
        else:
            block = self._ensure_active_block(channel)
        per = self._pages_per_block
        write_points = self._write_points
        ppn = block * per + write_points[block]
        self.chip.program(ppn, data, oob)
        if write_points[block] >= per:
            # The trans stream may have degraded to the shared active
            # block, so clear whichever store(s) pointed here.
            if block == self._trans_active[channel]:
                self._trans_active[channel] = None
            if block == self._active_blocks[channel]:
                self._active_blocks[channel] = None
        return ppn

    def _trans_stream_wanted(self, oob: tuple) -> bool:
        """Whether this program belongs in the translation-block stream."""
        return self._cmt is not None and oob[0] == OOB_MAP

    def _ensure_trans_block(self, channel: int) -> int:
        """Active translation block for ``channel``, allocating if needed.

        Dedicating a block to translation pages costs the data stream one
        free block, so under space pressure the stream degrades to the
        shared active block (the same opportunism as the background hot
        stream) rather than starving GC of headroom.
        """
        active = self._trans_active[channel]
        if active is not None and self._write_points[active] < self._pages_per_block:
            return active
        if len(self._free_by_channel[channel]) <= self.config.gc_free_block_threshold:
            self._garbage_collect(channel)
        free = self._free_by_channel[channel]
        if not free or self._gc_headroom_pages(channel) <= 2 * self._pages_per_block:
            return self._ensure_active_block(channel)
        block = free.pop()
        self._trans_active[channel] = block
        self._alloc_order[channel].append(block)
        self._trans_blocks.add(block)
        return block

    def _release_trans_block(self, channel: int) -> bool:
        """Fold the translation stream back into the shared pool.

        Called when GC is starved: the trans active block is excluded from
        victim selection and its erased tail does not count as copyback
        headroom, so under pressure holding onto it can wedge an otherwise
        sustainable workload.  Releasing it makes the block an ordinary
        victim candidate — and, when the cold slot is open, the new active
        block, which returns its erased pages to the headroom pool.
        """
        block = self._trans_active[channel]
        if block is None:
            return False
        self._trans_active[channel] = None
        if (
            self._active_blocks[channel] is None
            and self._write_points[block] < self._pages_per_block
        ):
            self._active_blocks[channel] = block
        return True

    def _ensure_active_block(self, channel: int) -> int:
        active = self._active_blocks[channel]
        if active is not None and self._write_points[active] < self._pages_per_block:
            return active
        if len(self._free_by_channel[channel]) <= self.config.gc_free_block_threshold:
            self._garbage_collect(channel)
        free = self._free_by_channel[channel]
        if not free:
            raise OutOfSpaceError(f"no free blocks on channel {channel} after GC")
        block = free.pop()
        self._active_blocks[channel] = block
        self._alloc_order[channel].append(block)
        return block

    def _gc_headroom_pages(self, channel: int) -> int:
        """Erased pages GC may program into on ``channel`` (free pool + active)."""
        per = self._pages_per_block
        pages = len(self._free_by_channel[channel]) * per
        active = self._active_blocks[channel]
        if active is not None:
            pages += per - self._write_points[active]
        return pages

    def _garbage_collect(self, channel: int, target_blocks: int | None = None) -> None:
        """Greedy channel-local GC: reclaim until the pool is above threshold.

        GC never crosses channels: the victim and the copyback target share
        a channel, so relocation's read->program dependency chains sit on
        one channel timeline and need no cross-channel synchronisation (and
        the striped layout keeps every channel's share of invalid pages
        statistically equal).  A victim is only collected when the current
        headroom (erased pages in the channel's free pool plus its active
        block) covers its valid-page copyback — erasing is how GC *gains*
        space, so it must never erase itself into a corner.  Independent of
        the block target, collection continues until the page-granular
        headroom floor (one block's worth of erased pages) is restored:
        tight geometries may never stabilise the free pool above one block,
        yet stay perfectly sustainable by cycling the active block's spare
        pages.  ``target_blocks=0`` runs a floor-only pass (used before
        each program).
        """
        geo = self.chip.geometry
        if target_blocks is None:
            target_blocks = self.config.gc_free_block_threshold + 1
        floor_pages = geo.pages_per_block
        guard = geo.total_pages + geo.num_blocks
        while (
            len(self._free_by_channel[channel]) < target_blocks
            or self._gc_headroom_pages(channel) <= floor_pages
        ):
            guard -= 1
            if guard < 0:
                raise OutOfSpaceError("garbage collection cannot make progress")
            victim = self._pick_victim(channel)
            if victim is None or self._valid_count[victim] > self._gc_headroom_pages(channel):
                if self._release_trans_block(channel):
                    continue  # the freed stream block may be reclaimable
                if self._free_by_channel[channel] or self._gc_headroom_pages(channel) > 0:
                    return  # nothing reclaimable; live with what we have
                raise OutOfSpaceError("no GC victim and no free blocks")
            self._collect_block(victim)

    def _pick_victim(self, channel: int) -> int | None:
        if self.config.gc_policy == "fifo":
            victim = self._pick_victim_fifo(channel)
            if victim is not None:
                return victim
            # Explicit fallback (see FtlConfig.gc_policy): FIFO found no
            # reclaimable block in allocation-age order, so the greedy pick
            # keeps GC live.  Counted so aged-state results produced under
            # fallback are never silently mislabeled as pure FIFO.
            self._obs_gc_fifo_fallbacks.inc()
        return self._pick_victim_greedy(channel)

    def _pick_victim_fifo(self, channel: int) -> int | None:
        """Oldest reclaimable block in the channel's allocation order."""
        per = self._pages_per_block
        write_points = self._write_points
        valid_counts = self._valid_count
        active = self._active_blocks[channel]
        trans = self._trans_active[channel]
        for block in self._alloc_order[channel]:
            if block == active or block == trans:
                continue
            used = write_points[block]
            if used == 0:
                continue
            valid = valid_counts[block]
            if valid < used or used == per:
                if valid < per:
                    return block
        return None

    def _pick_victim_greedy(self, channel: int) -> int | None:
        """Channel block with the fewest valid pages among written, non-active."""
        per = self._pages_per_block
        write_points = self._write_points
        valid_counts = self._valid_count
        active = self._active_blocks[channel]
        trans = self._trans_active[channel]
        best = None
        best_valid = None
        for block in self.chip.geometry.channel_blocks(channel):
            if block == active or block == trans:
                continue
            used = write_points[block]
            if used == 0:
                continue  # free or erased
            valid = valid_counts[block]
            if valid >= used and used < per:
                continue  # partially-written block with nothing reclaimable
            if best_valid is None or valid < best_valid:
                best, best_valid = block, valid
        if best is not None and best_valid == per:
            return None  # all blocks fully valid: nothing to reclaim
        return best

    def _collect_block(self, victim: int) -> None:
        geo = self.chip.geometry
        channel = geo.channel_of_block(victim)
        used = self._write_points[victim]
        valid_before = self._valid_count[victim]
        self.stats.gc_invocations += 1
        self._obs_gc_invocations.inc()
        if victim in self._trans_blocks:
            self.stats.gc_translation_collections += 1
            self._obs_gc_trans.inc()
        self._note_victim_valid(valid_before, geo.pages_per_block)

        # Copyback counters batch per victim instead of per page; the
        # try/finally keeps them exact when a crash point fires mid-loop
        # (a read that happened before the failure is still counted).
        reads = 0
        writes = 0
        owners = self._owner
        chip_read = self.chip.read
        tenants = self.chip.tenants
        if tenants.enabled:
            # Cross-tenant collision accounting: a victim holding live
            # data from several tenants makes each pay for the others'
            # heat.  Copybacks attribute to the page's owning tenant.
            start = victim * geo.pages_per_block
            tenants.note_gc_victim(
                tenants.owner_of(owner[1])
                for owner in map(owners.get, range(start, start + used))
                if owner is not None and owner[0] == OWNER_L2P
            )
        try:
            with self.obs.tracer.span("gc_collect", "ftl"):
                start = victim * geo.pages_per_block
                for ppn in range(start, start + used):
                    owner = owners.get(ppn)
                    if owner is None:
                        continue
                    data = chip_read(ppn)
                    reads += 1
                    new_ppn = self._program_for_gc(data, self._gc_oob(owner, ppn), channel)
                    writes += 1
                    if tenants.enabled and owner[0] == OWNER_L2P:
                        tenants.note_copyback(owner[1])
                    self._drop_owner(ppn)
                    self._set_owner_raw(new_ppn, owner)
                    self._apply_relocation(owner, ppn, new_ppn)
                self.chip.erase(victim)
        finally:
            if reads:
                self.stats.gc_copyback_reads += reads
                self._obs_gc_reads.inc(reads)
            if writes:
                self.stats.gc_copyback_writes += writes
                self._obs_gc_writes.inc(writes)
        self._trans_blocks.discard(victim)
        self._free_by_channel[channel].append(victim)
        try:
            self._alloc_order[channel].remove(victim)
        except ValueError:
            pass

    def _note_victim_valid(self, valid_pages: int, pages_per_block: int) -> None:
        """Record one GC victim's valid-page count (running mean + histogram)."""
        self._gc_valid_ratio_sum += valid_pages / pages_per_block
        self._gc_valid_ratio_count += 1
        self._obs_gc_victim_valid.observe(float(valid_pages))

    def _program_for_gc(self, data: Any, oob: tuple, channel: int) -> int:
        """Program during GC, drawing directly on the channel's free pool."""
        per = self._pages_per_block
        write_points = self._write_points
        active = self._active_blocks[channel]
        if active is None or write_points[active] >= per:
            free = self._free_by_channel[channel]
            if not free:
                raise OutOfSpaceError("GC ran out of headroom blocks")
            active = free.pop()
            self._active_blocks[channel] = active
            self._alloc_order[channel].append(active)
        ppn = active * per + write_points[active]
        self.chip.program(ppn, data, oob)
        if write_points[active] >= per:
            self._active_blocks[channel] = None
        return ppn

    def _gc_oob(self, owner: tuple, old_ppn: int) -> tuple:
        """OOB metadata for a GC-relocated page."""
        kind = owner[0]
        self._seq += 1
        if kind == OWNER_L2P:
            # Committed data: replayable by anyone (tid=None).
            return (OOB_DATA, owner[1], self._seq, None)
        if kind == OWNER_MAP:
            return (OOB_MAP, owner[1], self._seq, None)
        if kind == OWNER_META:
            return (OOB_META, owner[1], self._seq, None)
        if kind == OWNER_RETIRED:
            # Keep the retired page's real identity: a relocated retired
            # X-L2P table page must stay recognisable as OOB_XL2P_TABLE (and
            # keep its page index) or recovery misclassifies it as firmware
            # metadata.
            retired_kind = owner[1]
            oob_kind = {
                OWNER_MAP: OOB_MAP,
                OWNER_META: OOB_META,
                OWNER_XL2P_TABLE: OOB_XL2P_TABLE,
            }.get(retired_kind, OOB_META)
            return (oob_kind, owner[2] if isinstance(owner[2], int) else 0, self._seq, None)
        # Subclass owners (X-L2P) are handled by _gc_oob_extra.
        return self._gc_oob_extra(owner, old_ppn)

    def _gc_oob_extra(self, owner: tuple, old_ppn: int) -> tuple:
        raise FtlError(f"unknown page owner {owner!r}")

    def _apply_relocation(self, owner: tuple, old_ppn: int, new_ppn: int) -> None:
        """Point the owning structure(s) at the relocated physical page."""
        kind = owner[0]
        if kind == OWNER_L2P:
            self._l2p[owner[1]] = new_ppn
            # The relocated mapping must reach flash at the next flush: the
            # published root.seq will cover the relocation's sequence number,
            # so OOB replay would skip it — without the dirty marker a crash
            # after the next barrier reads the stale flushed mapping.
            self._mark_dirty(owner[1])
        elif kind == OWNER_MAP:
            self._map_dir[owner[1]] = new_ppn
            if self._root.map_dir.get(owner[1]) == old_ppn:
                self._root.map_dir[owner[1]] = new_ppn  # atomic meta update
        elif kind == OWNER_META:
            self._meta_dir[owner[1]] = new_ppn
            if self._root.meta_dir.get(owner[1]) == old_ppn:
                self._root.meta_dir[owner[1]] = new_ppn
        elif kind == OWNER_RETIRED:
            self._pending_retired.discard(old_ppn)
            self._pending_retired.add(new_ppn)
            self._relocate_root_reference(owner[1], owner[2], old_ppn, new_ppn)
        else:
            self._apply_relocation_extra(owner, old_ppn, new_ppn)

    def _relocate_root_reference(
        self, kind: str, key: object, old_ppn: int, new_ppn: int
    ) -> None:
        """Keep the durable root pointing at a relocated retired page."""
        if kind == OWNER_MAP and self._root.map_dir.get(key) == old_ppn:
            self._root.map_dir[key] = new_ppn
        elif kind == OWNER_META and self._root.meta_dir.get(key) == old_ppn:
            self._root.meta_dir[key] = new_ppn
        elif kind == OWNER_XL2P_TABLE and old_ppn in self._root.xl2p_ppns:
            self._root.xl2p_ppns = tuple(
                new_ppn if p == old_ppn else p for p in self._root.xl2p_ppns
            )

    def _apply_relocation_extra(self, owner: tuple, old_ppn: int, new_ppn: int) -> None:
        raise FtlError(f"unknown page owner {owner!r}")

    # -------- map persistence ------------------------------------------

    def _segment_entries(self, segment: int) -> tuple:
        return self._l2p.segment_items(segment)

    def _segment_image(self, segment: int) -> tuple:
        """The image a translation-page flush of ``segment`` would program.

        The stock FTL programs the raw ``(lpn, ppn)`` entries; the
        multi-version XFTL overrides this to append version chains.
        """
        return self._segment_entries(segment)

    @staticmethod
    def _translation_images_match(flushed, live) -> bool:
        """Order-insensitive comparison of two translation-page images.

        Images hold ``(lpn, ppn)`` pairs — or ``(lpn, ppn, chain)`` triples
        under the multi-version XFTL — keyed by lpn.
        """
        return {e[0]: e[1:] for e in flushed} == {e[0]: e[1:] for e in live}

    def _retire(self, ppn: int, kind: str, key: object) -> None:
        """Keep a superseded root-referenced page valid until root publish."""
        self._drop_owner(ppn)
        self._set_owner_raw(ppn, (OWNER_RETIRED, kind, key))
        self._pending_retired.add(ppn)

    def _write_translation_page(self, segment: int, entries: tuple | None = None) -> int:
        """Program one translation (map) page and repoint the directory.

        Shared by the barrier flush, CMT dirty evictions and the commit
        pinning path; ``entries`` overrides the live segment content (the
        commit path programs an overlaid post-fold image).
        """
        if entries is None:
            entries = self._segment_entries(segment)
        self._seq += 1
        ppn = self._program(entries, (OOB_MAP, segment, self._seq, None))
        old = self._map_dir.get(segment)
        if old is not None and old in self._owner:
            if self._root.map_dir.get(segment) == old:
                # The durable root still references the superseded page:
                # pin it until the next publish (the seed barrier path —
                # map_dir and root.map_dir are always in sync there).
                self._retire(old, OWNER_MAP, segment)
            else:
                # Only demand-paged writebacks get here: the same segment
                # was already rewritten since the last publish, so the
                # superseded copy is not root-referenced and pinning it
                # would let retired pages pile up unboundedly between
                # publishes.
                self._invalidate(old)
        self._map_dir[segment] = ppn
        self._set_owner(ppn, (OWNER_MAP, segment))
        self.stats.map_page_writes += 1
        self._obs_map_writes.inc()
        return ppn

    def _flush_map(self) -> None:
        # One pass over the segments dirty *now*.  A GC pass inside one of
        # these programs can relocate a data page and re-dirty its segment;
        # such markers deliberately survive into the next barrier — the
        # relocation's fresh sequence number sits above the snapshot
        # root.seq the enclosing barrier publishes, so OOB replay covers
        # the gap until the segment is rewritten.
        for segment in sorted(self._dirty_segments):
            self.chip.crash_plan.hit(CP_BARRIER_MID)
            self._dirty_segments.discard(segment)
            self._write_translation_page(segment)

    def _flush_meta(self) -> None:
        """Firmware misc metadata (write points, erase counts, ...)."""
        for slot in range(self.config.barrier_meta_pages):
            self._seq += 1
            ppn = self._program(("meta", slot), (OOB_META, slot, self._seq, None))
            old = self._meta_dir.get(slot)
            if old is not None and old in self._owner:
                self._retire(old, OWNER_META, slot)
            self._meta_dir[slot] = ppn
            self._set_owner(ppn, (OWNER_META, slot))
            self.stats.map_page_writes += 1
            self._obs_map_writes.inc()

    def _publish_root(self, seq: int) -> None:
        """Atomically update the meta block (assumed atomic, §5.3).

        ``seq`` is the replay horizon: OOB entries above it are replayed at
        remount.  The barrier passes its pre-flush snapshot so relocations
        performed *during* the flush stay replayable.
        """
        self._root = RootRecord(
            map_dir=dict(self._map_dir),
            meta_dir=dict(self._meta_dir),
            seq=seq,
            xl2p_ppns=self._root.xl2p_ppns,
            committed_tids=self._root.committed_tids,
            commit_seq=self._commit_seq_for_root(),
        )

    def _commit_seq_for_root(self) -> int:
        """Commit sequence counter published with the root (XFTL overrides)."""
        return self._root.commit_seq

    # -------- recovery helpers ------------------------------------------

    def _scan_oob(self, min_seq: int) -> Iterator[tuple[int, str, int, int | None, int]]:
        """Yield ``(seq, kind, lpn, tid, ppn)`` for programmed pages with seq >= min_seq."""
        geo = self.chip.geometry
        page_states = self._page_states
        for ppn in range(geo.total_pages):
            if page_states[ppn] != PAGE_PROGRAMMED:
                continue
            oob = self.chip.read_oob(ppn)
            if not oob:
                continue
            kind, lpn, seq, tid = oob
            if seq >= min_seq:
                yield (seq, kind, lpn, tid, ppn)

    def _rebuild_space_state(self) -> None:
        geo = self.chip.geometry
        self.chip.state.rebuild_validity(self._owner)
        write_points = self._write_points
        self._free_by_channel = [
            [b for b in geo.channel_blocks(ch) if write_points[b] == 0]
            for ch in range(geo.channels)
        ]
        # Allocation-age order is volatile; approximate by block number.
        self._alloc_order = [
            [b for b in geo.channel_blocks(ch) if write_points[b] > 0]
            for ch in range(geo.channels)
        ]
        self._active_blocks = [None] * geo.channels
        self._write_channel = 0
        # Translation-block identity is volatile: after a crash the stream
        # restarts with fresh allocations and old translation blocks are
        # treated as ordinary aged blocks.
        self._trans_active = [None] * geo.channels
        self._trans_blocks = set()
        # Resume appending into each channel's fullest partially-written block.
        for channel in range(geo.channels):
            partials = [
                block
                for block in geo.channel_blocks(channel)
                if 0 < write_points[block] < geo.pages_per_block
            ]
            if partials:
                self._active_blocks[channel] = max(partials, key=write_points.__getitem__)

    # -------- inspection --------------------------------------------------

    def mapped_ppn(self, lpn: int) -> int | None:
        """Current physical page of ``lpn`` in the committed L2P view."""
        return self._l2p.get(lpn)

    def free_block_count(self) -> int:
        return sum(len(free) for free in self._free_by_channel)

    def free_block_count_by_channel(self) -> list[int]:
        return [len(free) for free in self._free_by_channel]

    def utilization(self) -> float:
        """Fraction of raw flash pages currently holding valid data."""
        return len(self._owner) / self.chip.geometry.total_pages

    def wear_stats(self) -> dict[str, float]:
        """Erase-count distribution across blocks (wear levelling view)."""
        counts = self.chip.state.erase_counts
        total = sum(counts)
        n = len(counts)
        mean = total / n
        variance = sum((c - mean) ** 2 for c in counts) / n
        return {
            "total_erases": float(total),
            "mean": mean,
            "max": float(max(counts)),
            "min": float(min(counts)),
            "stddev": variance**0.5,
        }

    def gc_mean_valid_ratio(self) -> float:
        """Average fraction of valid pages carried over per GC (Fig. 5/6 knob)."""
        if not self._gc_valid_ratio_count:
            return 0.0
        return self._gc_valid_ratio_sum / self._gc_valid_ratio_count

    def check_invariants(self) -> None:
        """Internal consistency checks used by tests (not by benchmarks)."""
        geo = self.chip.geometry
        state_view = self.chip.state
        counts = [0] * geo.num_blocks
        for ppn, owner in self._owner.items():
            counts[ppn // geo.pages_per_block] += 1
            if state_view.page_states[ppn] != PAGE_PROGRAMMED:
                raise FlashError(f"owned page {ppn} ({owner}) is not programmed")
            if not state_view.valid[ppn]:
                raise FtlError(f"owned page {ppn} ({owner}) not set in valid bitmap")
        if counts != self._valid_count:
            raise FtlError("valid-count accounting out of sync")
        if state_view.valid_page_count() != len(self._owner):
            raise FtlError("valid bitmap popcount disagrees with owner map")
        if list(state_view.valid_count_per_block()) != state_view.valid_counts:
            raise FtlError("per-block valid counts disagree with valid bitmap")
        for lpn, ppn in self._l2p.items():
            if self._owner.get(ppn) != (OWNER_L2P, lpn):
                raise FtlError(f"l2p[{lpn}]={ppn} not owned by l2p")
        for segment, bucket in self._l2p.segments.items():
            per = self._l2p.entries_per_page
            for lpn in bucket:
                if lpn // per != segment or lpn not in self._l2p:
                    raise FtlError(f"l2p segment bucket {segment} out of sync at {lpn}")
        if sum(len(b) for b in self._l2p.segments.values()) != len(self._l2p):
            raise FtlError("l2p segment buckets out of sync with mapping")
        for channel in range(geo.channels):
            active = self._active_blocks[channel]
            if active is not None and geo.channel_of_block(active) != channel:
                raise FtlError(f"active block {active} not on channel {channel}")
            trans = self._trans_active[channel]
            if trans is not None:
                if geo.channel_of_block(trans) != channel:
                    raise FtlError(f"trans block {trans} not on channel {channel}")
                if trans == active:
                    raise FtlError(f"trans block {trans} doubles as the active block")
                if trans in self._free_by_channel[channel]:
                    raise FtlError(f"trans block {trans} still in the free pool")
            for block in self._free_by_channel[channel]:
                if geo.channel_of_block(block) != channel:
                    raise FtlError(f"free block {block} on wrong channel list {channel}")
                if state_view.write_points[block] != 0:
                    raise FtlError(f"free block {block} is not erased")
        if self._cmt is not None:
            self._cmt.check_invariants()
        if self._gc is not None:
            self._gc.check_invariants()
