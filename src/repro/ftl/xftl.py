"""X-FTL: the transactional flash translation layer (§4, §5).

Extends the stock page-mapped FTL with the paper's four extra commands:

``write_tx(tid, lpn, data)``
    Copy-on-write the page as usual, but record the new physical address in
    the X-L2P table instead of the main L2P table.  The committed copy stays
    readable; the uncommitted copy is pinned against garbage collection.

``read_tx(tid, lpn)``
    Return the transaction's own uncommitted copy if it has one, otherwise
    the committed copy (snapshot read, §4.2).

``commit(tid)``
    Mark the transaction's entries committed, flush the (tiny) X-L2P table
    copy-on-write to flash — one or two page programs — atomically update
    the meta-block root, then fold the entries into L2P in DRAM.  This is
    the entire durable cost of a commit; the large L2P map is checkpointed
    lazily.  (Figure 4.)

``abort(tid)``
    Drop the transaction's entries; its new physical pages become invalid
    and the old committed copies remain current.  No flash writes required:
    recovery discards any transaction that is not durably committed.

Recovery (§5.4): on remount, the inherited FTL recovery restores L2P from
the last checkpoint plus the OOB replay — where a tid-tagged data write is
applied only if its tid is in the durable committed set.  Then the persisted
X-L2P table is loaded and its committed entries are reflected into L2P,
which is idempotent.  Active (uncommitted) entries are simply discarded,
which *is* the rollback.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import TransactionError
from repro.flash.chip import FlashChip
from repro.flash.state import PAGE_PROGRAMMED
from repro.ftl.base import FtlConfig
from repro.ftl.cmt import CP_CMT_COMMIT_FLUSH, CP_CMT_COMMIT_PUBLISH
from repro.ftl.pagemap import (
    OOB_DATA,
    OOB_XL2P_TABLE,
    OWNER_L2P,
    OWNER_VERSION,
    OWNER_XL2P_DATA,
    OWNER_XL2P_TABLE,
    VERSION_TID,
    PageMappingFTL,
)
from repro.ftl.xl2p import TxStatus, VersionedL2P, XL2PTable
from repro.obs import DEFAULT_SIZE_BOUNDS
from repro.sim.crash import register_crash_point

CP_COMMIT_BEFORE_FLUSH = register_crash_point(
    "xftl.commit.before-flush", "ftl.xftl", "commit marked in DRAM, X-L2P flush not started"
)
CP_COMMIT_AFTER_FLUSH = register_crash_point(
    "xftl.commit.after-flush", "ftl.xftl", "X-L2P flushed and root republished, L2P fold pending"
)
CP_GROUP_FLUSH = register_crash_point(
    "xftl.group.flush",
    "ftl.xftl",
    "group commit: all members marked committed in DRAM, shared X-L2P flush not started",
)
CP_GROUP_PUBLISH = register_crash_point(
    "xftl.group.publish",
    "ftl.xftl",
    "group commit: shared X-L2P flush durable and root republished, L2P folds pending",
)
CP_VERSION_PUBLISH = register_crash_point(
    "xftl.version.publish",
    "ftl.mvcc",
    "superseded committed page re-owned as a retained version, chain push pending",
)
CP_VERSION_RELEASE = register_crash_point(
    "xftl.version.release",
    "ftl.mvcc",
    "version released from its chain, deferred invalidation pending",
)


class XFTL(PageMappingFTL):
    """Transactional FTL over a page-mapped base (see module docstring)."""

    def __init__(self, chip: FlashChip, config: FtlConfig | None = None) -> None:
        super().__init__(chip, config)
        self.xl2p = XL2PTable(
            capacity=self.config.xl2p_capacity,
            entry_bytes=self.config.xl2p_entry_bytes,
        )
        self._xl2p_page_ppns: list[int] = []
        self._commits_since_checkpoint = 0
        self._committed_tids: set[int] = set()
        self._aborted_tids: set[int] = set()
        self._started_tids: set[int] = set()  # tids with >= 1 write_tx this mount
        self._writers_by_lpn: dict[int, int] = {}  # conflict detection only
        self.last_xl2p_recovery_us = 0.0
        # Multi-version X-L2P (FtlConfig.retain_versions).  ``None`` — the
        # retain_versions=1 default — keeps every code path bit-identical to
        # the single-version stack (same discipline as cmt_pages=0).
        if self.config.retain_versions < 1:
            raise TransactionError(
                f"retain_versions must be >= 1, got {self.config.retain_versions}"
            )
        if self.config.retain_versions > 1:
            self._versions: VersionedL2P | None = VersionedL2P(
                self.config.retain_versions
            )
        else:
            self._versions = None
        # Commit sequence counter: ticks once per committed transaction
        # (snapshots pin its value).  Stays 0 on the single-version stack.
        self._commit_counter = 0
        obs = chip.obs
        self._obs_commits = obs.counter("ftl.commits")
        self._obs_aborts = obs.counter("ftl.aborts")
        self._obs_xl2p_writes = obs.counter("ftl.xl2p.page_writes")
        self._obs_xl2p_flush_pages = obs.histogram(
            "ftl.xl2p.flush_pages", DEFAULT_SIZE_BOUNDS
        )
        self._obs_commit_us = obs.histogram("ftl.commit.latency_us")
        self._obs_xl2p_flushes = obs.counter("ftl.xl2p.flushes")
        self._obs_group_commits = obs.counter("ftl.group_commits")
        self._obs_group_size = obs.histogram("ftl.group_commit.size", DEFAULT_SIZE_BOUNDS)
        self._obs_version_publishes = obs.counter("ftl.mvcc.version_publishes")
        self._obs_version_releases = obs.counter("ftl.mvcc.version_releases")
        self._obs_asof_reads = obs.counter("ftl.mvcc.asof_reads")

    # ------------------------------------------------------ transactional IO

    def write_tx(self, tid: int, lpn: int, data: Any) -> None:
        """Tagged write: new copy goes to X-L2P, committed copy untouched."""
        if tid is None:
            raise TransactionError("write_tx requires a transaction id")
        self._check_power()
        self._check_lpn(lpn)
        if self.config.detect_write_conflicts:
            holder = self._writers_by_lpn.get(lpn)
            if holder is not None and holder != tid:
                raise TransactionError(
                    f"write-write conflict on lpn {lpn}: held by tid {holder}"
                )
            self._writers_by_lpn[lpn] = tid
        self._seq += 1
        ppn = self._program(data, (OOB_DATA, lpn, self._seq, tid))
        self._started_tids.add(tid)
        previous = self.xl2p.put(tid, lpn, ppn)
        if previous is not None:
            # The transaction rewrote its own uncommitted copy.
            self._invalidate(previous.new_ppn)
        self._set_owner(ppn, (OWNER_XL2P_DATA, tid, lpn))
        self.stats.host_page_writes += 1
        self._obs_host_writes.inc()

    def read_tx(self, tid: int, lpn: int) -> Any:
        """Tagged read: the transaction sees its own writes, else committed."""
        self._check_power()
        self._check_lpn(lpn)
        entry = self.xl2p.get(tid, lpn)
        if entry is None:
            return self.read(lpn)
        self.stats.host_page_reads += 1
        self._obs_host_reads.inc()
        return self.chip.read(entry.new_ppn)

    # ------------------------------------------------- multi-version X-L2P

    def write(self, lpn: int, data: Any) -> None:
        """Non-transactional write; retains the superseded committed copy."""
        if self._versions is None:
            super().write(lpn, data)
            return
        self._check_power()
        self._check_lpn(lpn)
        if self._cmt is not None:
            self._cmt.access(lpn // self._map_entries_per_page)
        self._seq += 1
        ppn = self._program(data, (OOB_DATA, lpn, self._seq, None))
        old = self._l2p.get(lpn)
        if old is not None:
            if self._owner.get(old) == (OWNER_L2P, lpn):
                # A plain overwrite is its own one-page commit: it ticks
                # the commit counter so snapshots order it against both
                # transactional commits and other plain overwrites (two
                # overwrites sharing a sequence would make a snapshot
                # between them resolve to the older copy).
                self._commit_counter += 1
                self._version_publish(lpn, old, self._commit_counter)
            else:
                self._invalidate(old)
        self._l2p[lpn] = ppn
        self._set_owner(ppn, (OWNER_L2P, lpn))
        self._mark_dirty(lpn)
        self.stats.host_page_writes += 1
        self._obs_host_writes.inc()

    def trim(self, lpn: int) -> None:
        super().trim(lpn)
        if self._versions is not None:
            for ppn in self._versions.release_lpn(lpn):
                self._release_version_page(lpn, ppn)

    def read_as_of(self, lpn: int, snap: int) -> Any:
        """Committed content of ``lpn`` as of commit sequence ``snap``.

        Resolves through the lpn's version chain: the oldest retained copy
        superseded *after* ``snap``, falling back to the current committed
        copy.  With ``retain_versions=1`` this degenerates to :meth:`read`.
        """
        self._check_power()
        self._check_lpn(lpn)
        versions = self._versions
        if versions is not None:
            ppn = versions.resolve(lpn, snap)
            if ppn is not None:
                self.stats.host_page_reads += 1
                self._obs_host_reads.inc()
                self._obs_asof_reads.inc()
                return self.chip.read(ppn)
            self._obs_asof_reads.inc()
        return self.read(lpn)

    def snapshot_seq(self) -> int:
        """The commit sequence number a snapshot taken right now pins."""
        self._check_power()
        return self._commit_counter

    def set_snapshot_floor(self, floor: int | None) -> None:
        """Publish the oldest active snapshot to drive version reclamation.

        ``None`` means no active snapshots: chains trim purely to the
        retention bound.  Versions a floor had pinned past the bound are
        released (deferred invalidation) once the floor moves beyond them.
        """
        self._check_power()
        versions = self._versions
        if versions is None:
            return
        for lpn, ppns in versions.set_floor(floor).items():
            for ppn in ppns:
                self._release_version_page(lpn, ppn)

    def version_chain(self, lpn: int) -> tuple:
        """Retained ``(ppn, sup_seq, oob_seq)`` versions of ``lpn`` (tests/bench)."""
        if self._versions is None:
            return ()
        return self._versions.chain(lpn)

    def retained_version_count(self) -> int:
        """Total retained version pages across all chains."""
        return len(self._versions) if self._versions is not None else 0

    def _version_publish(self, lpn: int, old_ppn: int, sup_seq: int) -> None:
        """Push a superseded committed copy onto the lpn's version chain.

        The page stays valid (GC-live) under an ``(OWNER_VERSION, lpn)``
        owner; its OOB sequence number is recorded as its stable identity
        for GC relocation and recovery validation.  Entries that fall off
        the bounded chain are released with deferred invalidation.
        """
        oob = self.chip.read_oob(old_ppn)
        oob_seq = oob[2] if oob else 0
        self._drop_owner(old_ppn)
        self._set_owner_raw(old_ppn, (OWNER_VERSION, lpn))
        self.chip.crash_plan.hit(CP_VERSION_PUBLISH)
        self._obs_version_publishes.inc()
        for released in self._versions.push(lpn, old_ppn, sup_seq, oob_seq):
            self._release_version_page(lpn, released)

    def _release_version_page(self, lpn: int, ppn: int) -> None:
        """Deferred invalidation of a released version (may still be
        referenced by the durable root's translation pages until the next
        publish)."""
        self.chip.crash_plan.hit(CP_VERSION_RELEASE)
        self._retire(ppn, OWNER_VERSION, lpn)
        self._obs_version_releases.inc()
        # The chain shrank, so the segment's durable image is stale.
        self._mark_dirty(lpn)

    def commit(self, tid: int) -> None:
        """Durably commit ``tid`` (Figure 4). Cheap: flushes only the X-L2P."""
        self._check_power()
        entries = self.xl2p.entries_of(tid)
        if not entries:
            # A tid with nothing to commit: either a stale handle (already
            # committed/aborted — a host protocol error) or a transaction
            # that never wrote (an empty fsync), which has nothing to make
            # durable and must not pay for an X-L2P flush.
            if tid in self._committed_tids:
                raise TransactionError(f"tid {tid} is already committed")
            if tid in self._aborted_tids:
                raise TransactionError(f"tid {tid} was aborted; cannot commit")
            self._release_write_locks(tid)
            self._started_tids.discard(tid)
            self.stats.commits += 1  # the host command succeeded; just free
            self._obs_commits.inc()
            return
        start_us = self.chip.clock.now_us
        with self.obs.tracer.span("xftl_commit", "ftl", tid=tid):
            # Step 1: status active -> committed (DRAM).
            self.xl2p.set_status(tid, TxStatus.COMMITTED)
            self.chip.crash_plan.hit(CP_COMMIT_BEFORE_FLUSH)
            # Step 2+3: CoW-flush the X-L2P table, atomically repoint the root.
            # In demand-paged (CMT) mode the flush also pins the
            # transaction's translation pages under the same drain barrier.
            self._committed_tids.add(tid)
            if self._versions is not None:
                # Tick before the flush so the published root carries the
                # post-commit counter (a post-crash snapshot must never pin
                # a sequence below a durably committed transaction's).
                self._commit_counter += 1
            commit_seq = self._commit_counter
            self._flush_xl2p(pin_entries=entries if self._cmt is not None else None)
            self.chip.crash_plan.hit(CP_COMMIT_AFTER_FLUSH)
            # Step 4: remap the LPNs in the main L2P table (DRAM; idempotent).
            # Multi-version mode publishes the superseded committed copy
            # into the lpn's version chain instead of invalidating it.
            for entry in entries:
                old = self._l2p.get(entry.lpn)
                if old is not None:
                    if self._versions is not None:
                        self._version_publish(entry.lpn, old, commit_seq)
                    else:
                        self._invalidate(old)
                self._drop_owner(entry.new_ppn)
                self._l2p[entry.lpn] = entry.new_ppn
                self._set_owner(entry.new_ppn, (OWNER_L2P, entry.lpn))
                self._mark_dirty(entry.lpn)
            self.xl2p.remove_tid(tid)
            if self._cmt is not None:
                per = self.config.map_entries_per_page
                self._settle_commit_segments({e.lpn // per for e in entries})
        self._release_write_locks(tid)
        self._started_tids.discard(tid)
        self.stats.commits += 1
        self._obs_commits.inc()
        self._obs_commit_us.observe(self.chip.clock.now_us - start_us)
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint >= self.config.map_checkpoint_interval:
            self._checkpoint_map()

    def commit_group(self, tids: Iterable[int]) -> None:
        """Durably commit several transactions under ONE X-L2P flush.

        Group commit (§4's natural extension once many host transactions
        share the firmware): every member is marked committed in DRAM,
        then a single CoW flush + root republish makes the whole batch
        durable atomically — a crash before the republish loses every
        member, after it loses none.  The drain barrier inside
        :meth:`_flush_xl2p` is paid once per group instead of once per
        transaction, so on a multi-channel array the flush fans out
        across channels exactly once.

        Order within ``tids`` is the commit order for L2P folding (the
        callers' transactions are conflict-free, so the order is
        unobservable unless conflict detection is disabled).
        """
        self._check_power()
        tids = list(dict.fromkeys(tids))
        live: list[int] = []
        for tid in tids:
            if self.xl2p.entries_of(tid):
                live.append(tid)
                continue
            # Same semantics as commit() for an empty tid: stale handles
            # are host protocol errors, never-wrote transactions are freed
            # without paying for a flush.
            if tid in self._committed_tids:
                raise TransactionError(f"tid {tid} is already committed")
            if tid in self._aborted_tids:
                raise TransactionError(f"tid {tid} was aborted; cannot commit")
            self._release_write_locks(tid)
            self._started_tids.discard(tid)
            self.stats.commits += 1
            self._obs_commits.inc()
        if not live:
            return
        if len(live) == 1:
            # Degenerate group: the plain commit path, bit for bit.
            self.commit(live[0])
            return
        start_us = self.chip.clock.now_us
        with self.obs.tracer.span("xftl_commit_group", "ftl"):
            for tid in live:
                self.xl2p.set_status(tid, TxStatus.COMMITTED)
            self.chip.crash_plan.hit(CP_GROUP_FLUSH)
            self._committed_tids.update(live)
            # One commit sequence per member, assigned in fold order and
            # ticked before the flush so the root publishes the post-batch
            # counter atomically with the batch's committed-tid set.
            commit_seqs: dict[int, int] = {}
            if self._versions is not None:
                for tid in live:
                    self._commit_counter += 1
                    commit_seqs[tid] = self._commit_counter
            # Pin the whole batch's translation pages (CMT mode): later
            # members' folds overlay earlier ones, matching the fold order.
            group_entries = (
                [e for tid in live for e in self.xl2p.entries_of(tid)]
                if self._cmt is not None
                else None
            )
            self._flush_xl2p(pin_entries=group_entries)
            self.chip.crash_plan.hit(CP_GROUP_PUBLISH)
            for tid in live:
                for entry in self.xl2p.entries_of(tid):
                    old = self._l2p.get(entry.lpn)
                    if old is not None:
                        if self._versions is not None:
                            self._version_publish(entry.lpn, old, commit_seqs[tid])
                        else:
                            self._invalidate(old)
                    self._drop_owner(entry.new_ppn)
                    self._l2p[entry.lpn] = entry.new_ppn
                    self._set_owner(entry.new_ppn, (OWNER_L2P, entry.lpn))
                    self._mark_dirty(entry.lpn)
                self.xl2p.remove_tid(tid)
            if group_entries is not None:
                per = self.config.map_entries_per_page
                self._settle_commit_segments({e.lpn // per for e in group_entries})
        for tid in live:
            self._release_write_locks(tid)
            self._started_tids.discard(tid)
        self.stats.commits += len(live)
        self.stats.group_commits += 1
        self._obs_commits.inc(len(live))
        self._obs_group_commits.inc()
        self._obs_group_size.observe(float(len(live)))
        self._obs_commit_us.observe(self.chip.clock.now_us - start_us)
        self._commits_since_checkpoint += len(live)
        if self._commits_since_checkpoint >= self.config.map_checkpoint_interval:
            self._checkpoint_map()

    def abort(self, tid: int) -> None:
        """Roll back ``tid``: drop its entries, invalidate its new pages.

        Aborting a transaction that never wrote is a no-op (SQLite rolls
        back read-only transactions through the same ioctl), but aborting
        an already-committed tid is a host protocol error.
        """
        self._check_power()
        entries = self.xl2p.entries_of(tid)
        if not entries:
            if tid in self._committed_tids:
                raise TransactionError(f"tid {tid} is already committed; cannot abort")
            self._release_write_locks(tid)
            self._started_tids.discard(tid)
            return
        self.xl2p.set_status(tid, TxStatus.ABORTED)
        self._aborted_tids.add(tid)
        self._started_tids.discard(tid)
        for entry in self.xl2p.remove_tid(tid):
            self._invalidate(entry.new_ppn)
        self._release_write_locks(tid)
        self.stats.aborts += 1
        self._obs_aborts.inc()

    # ------------------------------------------------------------ internals

    def _release_write_locks(self, tid: int) -> None:
        """Forget conflict-detection holds of a finished transaction."""
        if self.config.detect_write_conflicts:
            for lpn in [l for l, t in self._writers_by_lpn.items() if t == tid]:
                del self._writers_by_lpn[lpn]

    def _flush_xl2p(self, pin_entries: list | None = None) -> None:
        """Write the whole X-L2P table copy-on-write and republish the root.

        On a multi-channel array the table pages (DRAM-sourced) round-robin
        across channels and overlap inside one region; ``chip.drain()`` is
        the cross-channel barrier that makes every page durable *before*
        the root repoints at them, preserving the commit ordering of
        Figure 4 step 3.

        ``pin_entries`` (CMT mode only) are the committing transaction(s)'
        X-L2P entries: their translation pages are programmed in the same
        overlap region, so data, X-L2P table and translation pages all
        become durable under the one drain barrier and are published by
        the one atomic root update below.
        """
        images = self.xl2p.serialize(self.chip.geometry.page_size)
        new_ppns: list[int] = []
        with self.chip.overlap():
            for index, image in enumerate(images):
                self._seq += 1
                ppn = self._program(image, (OOB_XL2P_TABLE, index, self._seq, None))
                self._set_owner(ppn, (OWNER_XL2P_TABLE, index))
                new_ppns.append(ppn)
                self.stats.xl2p_page_writes += 1
                self._obs_xl2p_writes.inc()
            if pin_entries:
                self._pin_translation_pages(pin_entries)
        self.chip.drain()
        if pin_entries:
            self.chip.crash_plan.hit(CP_CMT_COMMIT_PUBLISH)
        self.stats.xl2p_flushes += 1
        self._obs_xl2p_flushes.inc()
        self._obs_xl2p_flush_pages.observe(float(len(images)))
        for index, old in enumerate(self._xl2p_page_ppns):
            if old in self._owner:
                # Retire with the real page index so a GC relocation keeps
                # the page labelled OOB_XL2P_TABLE (not misfiled as meta).
                self._retire(old, OWNER_XL2P_TABLE, index)
        self._xl2p_page_ppns = new_ppns
        # Atomic meta-block update: new X-L2P location + committed tid set
        # (+ the commit sequence counter; constant 0 when retain_versions=1).
        self._root.xl2p_ppns = tuple(new_ppns)
        self._root.committed_tids = frozenset(self._committed_tids)
        self._root.commit_seq = self._commit_counter
        if self._cmt is not None:
            # Demand-paged mode repoints translation pages outside barriers
            # (CMT writebacks, commit pinning); retired old copies become
            # collectable below, so the root must follow the directory in
            # the same atomic update.
            self._root.map_dir = dict(self._map_dir)
        for ppn in list(self._pending_retired):
            self._invalidate(ppn)
        self._pending_retired.clear()

    def _pin_translation_pages(self, entries: list) -> None:
        """Write the committing transaction(s)' translation pages (CMT mode).

        With a demand-paged map the X-L2P fold alone is not durable enough:
        the translation pages covering the transaction's LPNs may already
        have flushed copies that predate the commit, and root.seq does not
        advance at commit.  The commit therefore programs those pages with
        the *post-fold content overlaid* — the fold into DRAM happens after
        the root publish, exactly as before.
        """
        per = self.config.map_entries_per_page
        folds: dict[int, dict[int, int]] = {}
        for entry in entries:
            folds.setdefault(entry.lpn // per, {})[entry.lpn] = entry.new_ppn
        for segment in sorted(folds):
            self._cmt.insert_resident(segment)
            merged = dict(self._segment_entries(segment))
            merged.update(folds[segment])
            self.chip.crash_plan.hit(CP_CMT_COMMIT_FLUSH)
            self._dirty_segments.discard(segment)
            self._write_translation_page(segment, tuple(sorted(merged.items())))
            self._cmt.note_writeback()

    def _settle_commit_segments(self, segments: set[int]) -> None:
        """Mark a commit's translation segments clean when flash is current.

        The pinned pages carry overlaid post-fold content, so the fold's
        dirty marks are normally redundant.  But a GC pass triggered by the
        pinning programs themselves can relocate pages *after* a segment's
        image was captured; the side-effect-free ``chip.peek`` compare
        catches that and leaves such a segment dirty for the next flush.
        """
        for segment in segments:
            ppn = self._map_dir.get(segment)
            if ppn is None:
                continue
            if self._translation_images_match(
                self.chip.peek(ppn), self._segment_image(segment)
            ):
                self._dirty_segments.discard(segment)

    def _checkpoint_map(self) -> None:
        """Lazy L2P checkpoint: bounds OOB replay and prunes committed tids."""
        self.barrier()
        self._committed_tids.clear()
        self._root.committed_tids = frozenset()
        self._commits_since_checkpoint = 0

    def _segment_image(self, segment: int) -> tuple:
        entries = self._segment_entries(segment)
        if self._versions is not None:
            entries = self._versions.augment(entries)
        return entries

    def _write_translation_page(self, segment: int, entries: tuple | None = None) -> int:
        # Multi-version mode persists (lpn, ppn, chain) triples so retained
        # versions survive power loss; chain durability rides the existing
        # flush points (barriers, CMT writebacks, commit pinning) — a crash
        # can cost retention depth, never integrity (recovery validates
        # every restored entry against its page's OOB identity).
        if self._versions is not None:
            if entries is None:
                entries = self._segment_entries(segment)
            entries = self._versions.augment(entries)
        return super()._write_translation_page(segment, entries)

    # ------------------------------------------------- GC integration hooks

    def _gc_oob_extra(self, owner: tuple, old_ppn: int) -> tuple:
        kind = owner[0]
        if kind == OWNER_XL2P_DATA:
            # Uncommitted data keeps its tid so recovery can judge it.
            _, tid, lpn = owner
            return (OOB_DATA, lpn, self._seq, tid)
        if kind == OWNER_XL2P_TABLE:
            return (OOB_XL2P_TABLE, owner[1], self._seq, None)
        if kind == OWNER_VERSION:
            # A relocated retained version keeps its *original* sequence
            # number — the chain entry's stored identity — so OOB replay
            # never resurrects it as the current copy, and recovery can
            # still match it against the persisted chain.  VERSION_TID
            # marks it untouchable for replay even above the root horizon.
            lpn = owner[1]
            oob_seq = self._versions.oob_seq_of(lpn, old_ppn)
            if oob_seq is None:
                raise TransactionError(
                    f"version-owned ppn {old_ppn} missing from lpn {lpn}'s chain"
                )
            return (OOB_DATA, lpn, oob_seq, VERSION_TID)
        return super()._gc_oob_extra(owner, old_ppn)

    def _apply_relocation_extra(self, owner: tuple, old_ppn: int, new_ppn: int) -> None:
        kind = owner[0]
        if kind == OWNER_XL2P_DATA:
            _, tid, lpn = owner
            self.xl2p.update_ppn(tid, lpn, new_ppn)
            return
        if kind == OWNER_VERSION:
            lpn = owner[1]
            self._versions.relocate(lpn, old_ppn, new_ppn)
            # The chain's durable image now names a stale ppn; re-flush it.
            self._mark_dirty(lpn)
            return
        if kind == OWNER_XL2P_TABLE:
            index = owner[1]
            if index < len(self._xl2p_page_ppns) and self._xl2p_page_ppns[index] == old_ppn:
                self._xl2p_page_ppns[index] = new_ppn
            if old_ppn in self._root.xl2p_ppns:
                self._root.xl2p_ppns = tuple(
                    new_ppn if p == old_ppn else p for p in self._root.xl2p_ppns
                )
            return
        super()._apply_relocation_extra(owner, old_ppn, new_ppn)

    # ------------------------------------------------------------- recovery

    def _replay_applies(self, tid: int | None) -> bool:
        """OOB replay rule: untagged writes and durably committed tids apply.

        ``VERSION_TID`` marks GC-relocated retained versions: never current,
        never replayed (belt-and-braces — it can also never be committed).
        """
        if tid == VERSION_TID:
            return False
        return tid is None or tid in self._root.committed_tids

    def power_fail(self) -> None:
        super().power_fail()
        self.xl2p = XL2PTable(
            capacity=self.config.xl2p_capacity,
            entry_bytes=self.config.xl2p_entry_bytes,
        )
        self._xl2p_page_ppns = []
        self._committed_tids = set()
        self._aborted_tids = set()
        self._started_tids = set()
        self._commits_since_checkpoint = 0
        self._writers_by_lpn = {}
        self._commit_counter = 0
        if self._versions is not None:
            self._versions.clear()

    def _finish_remount(self) -> None:
        """Load the persisted X-L2P and reflect committed entries (§5.4).

        The measured duration is recorded in :attr:`last_xl2p_recovery_us`
        — this is the "X-FTL mode restart time" of Table 5.
        """
        t0 = self.chip.clock.now_us
        self._committed_tids = set(self._root.committed_tids)
        images = []
        for index, ppn in enumerate(self._root.xl2p_ppns):
            images.append(self.chip.read(ppn))
            self._set_owner_raw(ppn, (OWNER_XL2P_TABLE, index))
        self._xl2p_page_ppns = list(self._root.xl2p_ppns)
        if images:
            durable = XL2PTable.deserialize(
                images,
                capacity=self.config.xl2p_capacity,
                entry_bytes=self.config.xl2p_entry_bytes,
            )
            self._reflect_committed(durable)
        # Active/aborted entries are discarded: that *is* the rollback.
        self.xl2p = XL2PTable(
            capacity=self.config.xl2p_capacity,
            entry_bytes=self.config.xl2p_entry_bytes,
        )
        # Snapshots pinned before the crash are gone; the counter resumes
        # from the durable root so new snapshots sit above every durably
        # committed transaction.
        self._commit_counter = self._root.commit_seq
        if self._versions is not None:
            self._restore_version_chains()
        self.last_xl2p_recovery_us = self.chip.clock.now_us - t0

    def _commit_seq_for_root(self) -> int:
        return self._commit_counter

    def _restore_version_chains(self) -> None:
        """Re-validate and re-own persisted version chains (recovery).

        Runs after OOB replay and the committed X-L2P reflect, so every
        *current* page is already owned.  A persisted chain entry can be
        stale — released and reclaimed, its block erased or reused since
        the map page flushed — so each entry is validated against the
        physical page's OOB identity (programmed, data kind, same lpn,
        same sequence number) and against the owner map (an entry may
        never claim a page something else keeps alive).  Failures are
        dropped: an unowned page is simply reclaimed by the space-state
        rebuild, so a crash anywhere between version publish and release
        can lose retention depth but never orphan or double-free a page.
        """
        versions = self._versions
        versions.clear()
        page_states = self.chip.state.page_states
        owners = self._owner
        for segment in sorted(self._map_dir):
            # The map pages were already read (and charged) by the base
            # remount; peek re-decodes the persisted image for free.
            image = self.chip.peek(self._map_dir[segment])
            for entry in image:
                if len(entry) < 3:
                    continue
                lpn, chain = entry[0], entry[2]
                restored = []
                for ppn, sup_seq, oob_seq in chain:
                    if page_states[ppn] != PAGE_PROGRAMMED:
                        continue
                    oob = self.chip.read_oob(ppn)
                    if not oob or oob[0] != OOB_DATA or oob[1] != lpn or oob[2] != oob_seq:
                        continue
                    if ppn in owners:
                        continue
                    restored.append((ppn, sup_seq, oob_seq))
                    self._set_owner_raw(ppn, (OWNER_VERSION, lpn))
                if restored:
                    versions.restore(lpn, restored)
                    if len(restored) != len(chain):
                        # The durable chain shrank: persist the repair.
                        self._mark_dirty(lpn)
        # Snapshot pins died with the power; re-trim chains a floor had
        # held past the retention bound.
        for lpn, ppns in versions.set_floor(None).items():
            for ppn in ppns:
                self._release_version_page(lpn, ppn)

    def _reflect_committed(self, durable: XL2PTable) -> None:
        """Idempotently fold durably-committed X-L2P entries into L2P."""
        for tid in durable.active_tids():
            for entry in durable.entries_of(tid):
                if entry.status is not TxStatus.COMMITTED:
                    continue
                if self.chip.state.page_states[entry.new_ppn] != PAGE_PROGRAMMED:
                    continue  # stale entry: page was since relocated/erased
                oob = self.chip.read_oob(entry.new_ppn)
                if not oob or oob[0] != OOB_DATA or oob[1] != entry.lpn:
                    continue  # physical page reused for something else
                current = self._l2p.get(entry.lpn)
                if current == entry.new_ppn:
                    continue  # already reflected (idempotent)
                current_seq = self._oob_seq(current)
                if current_seq is not None and current_seq >= oob[2]:
                    continue  # a newer write superseded this entry
                self._remap_for_recovery(entry.lpn, entry.new_ppn)

    def _oob_seq(self, ppn: int | None) -> int | None:
        if ppn is None:
            return None
        oob = self.chip.read_oob(ppn)
        return oob[2] if oob else None

    # ----------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """X-L2P live-union invariant on top of the base FTL checks.

        Every page referenced by an X-L2P entry must be owned as that
        entry's uncommitted copy — i.e. the union of L2P and X-L2P
        references is exactly the live set GC preserves.  This is the
        property every background-GC preemption point must uphold: a
        paused copyback job may never leave an uncommitted transactional
        page unreferenced (collectable) or stale (pointing at a reclaimed
        physical page).
        """
        super().check_invariants()
        for tid in self.xl2p.active_tids():
            for entry in self.xl2p.entries_of(tid):
                owner = self._owner.get(entry.new_ppn)
                if owner != (OWNER_XL2P_DATA, tid, entry.lpn):
                    raise TransactionError(
                        f"X-L2P entry (tid={tid}, lpn={entry.lpn}) points at ppn "
                        f"{entry.new_ppn} owned by {owner!r}; live-union broken"
                    )
                if self.chip.state.page_states[entry.new_ppn] != PAGE_PROGRAMMED:
                    raise TransactionError(
                        f"X-L2P entry (tid={tid}, lpn={entry.lpn}) points at "
                        f"non-programmed ppn {entry.new_ppn}"
                    )
        versions = self._versions
        if versions is None:
            return
        # Version-chain invariants: every chain entry is a programmed page
        # owned as this lpn's retained version (the live-union GC preserves
        # now includes chains), chains never alias the current copy, commit
        # order is monotone, and no OWNER_VERSION owner is orphaned.
        chained = 0
        for lpn, chain in versions.chains():
            if not chain:
                raise TransactionError(f"empty version chain for lpn {lpn}")
            if versions.floor is None and len(chain) > versions.bound:
                raise TransactionError(
                    f"version chain for lpn {lpn} exceeds bound with no snapshot "
                    f"floor: {len(chain)} > {versions.bound}"
                )
            current = self._l2p.get(lpn)
            prev_seq = None
            for ppn, sup_seq, _oob_seq in chain:
                chained += 1
                owner = self._owner.get(ppn)
                if owner != (OWNER_VERSION, lpn):
                    raise TransactionError(
                        f"version chain entry (lpn={lpn}, ppn={ppn}) owned by "
                        f"{owner!r}; live-union broken"
                    )
                if self.chip.state.page_states[ppn] != PAGE_PROGRAMMED:
                    raise TransactionError(
                        f"version chain entry (lpn={lpn}) points at "
                        f"non-programmed ppn {ppn}"
                    )
                if ppn == current:
                    raise TransactionError(
                        f"ppn {ppn} is both current and retained for lpn {lpn}"
                    )
                if prev_seq is not None and sup_seq < prev_seq:
                    raise TransactionError(
                        f"version chain for lpn {lpn} lost commit order"
                    )
                prev_seq = sup_seq
        owned = sum(1 for owner in self._owner.values() if owner[0] == OWNER_VERSION)
        if owned != chained:
            raise TransactionError(
                f"{owned} pages owned as versions but {chained} chain entries"
            )
