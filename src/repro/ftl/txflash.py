"""TxFlash-style FTL (Prabhakaran et al., OSDI 2008) — baseline (§3.3).

TxFlash supports atomic multi-page writes *without* a separate commit
record: the pages of a group are linked into a cycle through their OOB
areas (Simple Cyclic Commit, SCC).  At recovery, a group is committed iff
its cycle is complete — every member page is present and points to the next.

As with :class:`~repro.ftl.atomic.AtomicWriteFTL`, atomicity is per call:
the group must be presented in one ``write_group`` invocation, which is the
restriction that conflicts with a steal buffer pool (the paper's §3.3).
TxFlash additionally rejects a group that conflicts with an in-flight group
on the same logical pages (its isolation guarantee).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import TransactionError
from repro.flash.chip import FlashChip
from repro.ftl.base import FtlConfig
from repro.ftl.pagemap import OWNER_L2P, PageMappingFTL

OOB_SCC = "scc"


class TxFlashFTL(PageMappingFTL):
    """Per-call atomic group writes with Simple Cyclic Commit."""

    def __init__(self, chip: FlashChip, config: FtlConfig | None = None) -> None:
        super().__init__(chip, config)
        self._group_seq = 0
        self._inflight_lpns: set[int] = set()

    def write_group(self, pages: Sequence[tuple[int, Any]]) -> None:
        """Atomically write a group, SCC-style (no commit record).

        Each page's OOB names the group, its position, the group size and
        the *next* member's lpn, closing a cycle.  The last program completes
        the cycle and thereby commits the group.
        """
        self._check_power()
        if not pages:
            return
        lpns = [lpn for lpn, _data in pages]
        if len(set(lpns)) != len(lpns):
            raise TransactionError("SCC group may not repeat a logical page")
        conflict = self._inflight_lpns.intersection(lpns)
        if conflict:
            raise TransactionError(f"conflicting in-flight group on lpns {sorted(conflict)}")

        self._group_seq += 1
        group = self._group_seq
        self._inflight_lpns.update(lpns)
        try:
            staged: list[tuple[int, int]] = []
            size = len(pages)
            for position, (lpn, data) in enumerate(pages):
                self._check_lpn(lpn)
                next_lpn = lpns[(position + 1) % size]
                self._seq += 1
                scc = (group, position, size, next_lpn)
                ppn = self._program(data, (OOB_SCC, lpn, self._seq, scc))
                staged.append((lpn, ppn))
                self.stats.host_page_writes += 1
            # Cycle is complete on flash: publish the mappings.
            for lpn, ppn in staged:
                old = self._l2p.get(lpn)
                if old is not None:
                    self._invalidate(old)
                self._l2p[lpn] = ppn
                self._set_owner(ppn, (OWNER_L2P, lpn))
                self._mark_dirty(lpn)
        finally:
            self._inflight_lpns.difference_update(lpns)

    # ------------------------------------------------------------- recovery

    def power_fail(self) -> None:
        super().power_fail()
        self._inflight_lpns = set()

    def remount(self) -> None:
        """Standard recovery, then apply groups whose SCC cycle is complete."""
        super().remount()
        groups: dict[int, list[tuple[int, int, int, int]]] = {}
        sizes: dict[int, int] = {}
        for seq, kind, lpn, extra, ppn in self._scan_oob(min_seq=self._root.seq + 1):
            if kind != OOB_SCC:
                continue
            group, position, size, _next_lpn = extra
            groups.setdefault(group, []).append((position, seq, lpn, ppn))
            sizes[group] = size
        for group in sorted(groups):
            members = groups[group]
            positions = {m[0] for m in members}
            if positions != set(range(sizes[group])):
                continue  # incomplete cycle: group never committed
            for _position, seq, lpn, ppn in sorted(members, key=lambda m: m[1]):
                self._remap_for_recovery(lpn, ppn)
            if group > self._group_seq:
                self._group_seq = group
        self._rebuild_space_state()

    def _gc_oob_extra(self, owner: tuple, old_ppn: int) -> tuple:
        return super()._gc_oob_extra(owner, old_ppn)
