"""Atomic-write FTL (Park et al., ISCE 2005) — related-work baseline (§3.3).

Supports atomic propagation of the pages named in a *single* write call,
``write_atomic([(lpn, data), ...])``: all pages are programmed copy-on-write,
then a commit record naming the group is programmed; only then are the
mappings published.  Recovery discards groups without a commit record.

Limitation reproduced on purpose: atomicity is per call.  Pages stolen from
the buffer pool at different times (SQLite's steal policy) land in different
calls and are *not* atomic as a group — this is the contrast X-FTL draws.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import FtlError
from repro.flash.chip import FlashChip
from repro.ftl.base import FtlConfig
from repro.ftl.pagemap import OOB_DATA, OWNER_L2P, PageMappingFTL

OOB_COMMIT_RECORD = "commit-record"
OWNER_COMMIT_RECORD = "commit-record"


class AtomicWriteFTL(PageMappingFTL):
    """Per-call atomic multi-page writes via commit records."""

    def __init__(self, chip: FlashChip, config: FtlConfig | None = None) -> None:
        super().__init__(chip, config)
        self._group_seq = 0
        self._live_commit_records: dict[int, int] = {}  # group id -> record ppn

    def write_atomic(self, pages: Sequence[tuple[int, Any]]) -> None:
        """Atomically write a group of pages: data pages, then a commit record.

        The mapping update is deferred until the commit record is durable, so
        a crash anywhere inside the call leaves all old copies current.
        """
        self._check_power()
        if not pages:
            return
        self._group_seq += 1
        group = self._group_seq
        staged: list[tuple[int, int]] = []
        lpns = tuple(lpn for lpn, _data in pages)
        for lpn, data in pages:
            self._check_lpn(lpn)
            self._seq += 1
            # Tag with the group id in the tid slot: recovery treats a group
            # as committed only if its commit record exists.
            ppn = self._program(data, (OOB_DATA, lpn, self._seq, ("group", group)))
            staged.append((lpn, ppn))
            self.stats.host_page_writes += 1
        # Commit record makes the group durable/atomic.
        self._seq += 1
        record_ppn = self._program(
            ("commit-record", group, lpns), (OOB_COMMIT_RECORD, group, self._seq, None)
        )
        self._set_owner(record_ppn, (OWNER_COMMIT_RECORD, group))
        self._live_commit_records[group] = record_ppn
        self.stats.map_page_writes += 1
        # Publish mappings now that the record is durable.
        for lpn, ppn in staged:
            old = self._l2p.get(lpn)
            if old is not None:
                self._invalidate(old)
            self._l2p[lpn] = ppn
            self._set_owner(ppn, (OWNER_L2P, lpn))
            self._mark_dirty(lpn)

    def barrier(self) -> None:
        """Checkpoint the map, after which old commit records are prunable.

        A commit record must stay valid until the mappings it guards are
        durable in the map checkpoint; pruning earlier would un-commit the
        group on recovery.
        """
        super().barrier()
        for group, ppn in list(self._live_commit_records.items()):
            if ppn in self._owner:
                self._invalidate(ppn)
            del self._live_commit_records[group]

    # ------------------------------------------------- GC/recovery plumbing

    def _gc_oob_extra(self, owner: tuple, old_ppn: int) -> tuple:
        if owner[0] == OWNER_COMMIT_RECORD:
            return (OOB_COMMIT_RECORD, owner[1], self._seq, None)
        return super()._gc_oob_extra(owner, old_ppn)

    def _apply_relocation_extra(self, owner: tuple, old_ppn: int, new_ppn: int) -> None:
        if owner[0] == OWNER_COMMIT_RECORD:
            group = owner[1]
            if self._live_commit_records.get(group) == old_ppn:
                self._live_commit_records[group] = new_ppn
            return
        super()._apply_relocation_extra(owner, old_ppn, new_ppn)

    def power_fail(self) -> None:
        super().power_fail()
        self._live_commit_records = {}

    def remount(self) -> None:
        """Standard recovery, then apply groups whose commit record survived."""
        super().remount()
        # Find surviving commit records and replay their groups in order.
        committed: dict[int, int] = {}
        staged: dict[int, list[tuple[int, int, int]]] = {}
        for seq, kind, key, tid, ppn in self._scan_oob(min_seq=self._root.seq + 1):
            if kind == OOB_COMMIT_RECORD:
                committed[key] = ppn
            elif kind == OOB_DATA and isinstance(tid, tuple) and tid[0] == "group":
                staged.setdefault(tid[1], []).append((seq, key, ppn))
        for group in sorted(committed):
            for seq, lpn, ppn in sorted(staged.get(group, [])):
                self._remap_for_recovery(lpn, ppn)
            self._set_owner_raw(committed[group], (OWNER_COMMIT_RECORD, group))
            self._live_commit_records[group] = committed[group]
            if group > self._group_seq:
                self._group_seq = group
        self._rebuild_space_state()

    def _replay_applies(self, tid) -> bool:
        # Group-tagged writes are handled in remount(); untagged ones apply.
        return tid is None


class FtlMisuseError(FtlError):
    """Raised when the per-call API is used where group semantics are needed."""
