"""The transactional logical-to-physical mapping table (X-L2P, §4.2, §5.3).

One entry per (transaction, logical page) pair that the transaction has
updated: ``(tid, lpn, new_ppn, status)``.  Entries are 16 bytes in the paper;
the whole table is 500-1000 entries (8-16 KB), small enough to be flushed
copy-on-write to flash in one or two page programs at every commit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import TransactionError


class TxStatus(enum.Enum):
    """Status of an updater transaction, as tracked by the X-L2P table."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class XL2PEntry:
    """One X-L2P row: transaction ``tid`` rewrote ``lpn`` at ``new_ppn``."""

    tid: int
    lpn: int
    new_ppn: int
    status: TxStatus = TxStatus.ACTIVE

    def as_record(self) -> tuple[int, int, int, str]:
        """Serialized row as stored in a flushed X-L2P flash page."""
        return (self.tid, self.lpn, self.new_ppn, self.status.value)

    @classmethod
    def from_record(cls, record: tuple[int, int, int, str]) -> "XL2PEntry":
        tid, lpn, new_ppn, status = record
        return cls(tid=tid, lpn=lpn, new_ppn=new_ppn, status=TxStatus(status))


class XL2PTable:
    """In-DRAM X-L2P table with capacity accounting.

    The table is indexed by ``(tid, lpn)``; a transaction updating the same
    page twice reuses its entry (only the newest uncommitted copy matters,
    §5.3).  Physical sizing (how many flash pages a flush takes) follows the
    configured entry size and capacity.
    """

    def __init__(self, capacity: int = 1000, entry_bytes: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.entry_bytes = entry_bytes
        self._entries: dict[tuple[int, int], XL2PEntry] = {}
        self._by_tid: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def get(self, tid: int, lpn: int) -> XL2PEntry | None:
        return self._entries.get((tid, lpn))

    def put(self, tid: int, lpn: int, new_ppn: int) -> XL2PEntry | None:
        """Insert or update the entry for ``(tid, lpn)``.

        Returns the *previous* entry (so the caller can invalidate the
        superseded uncommitted physical page), or ``None`` for a first write.
        Raises :class:`TransactionError` when the table is full.
        """
        key = (tid, lpn)
        previous = self._entries.get(key)
        if previous is None and len(self._entries) >= self.capacity:
            raise TransactionError(
                f"X-L2P table full ({self.capacity} entries); commit or abort first"
            )
        entry = XL2PEntry(tid=tid, lpn=lpn, new_ppn=new_ppn)
        self._entries[key] = entry
        self._by_tid.setdefault(tid, set()).add(lpn)
        return previous

    def entries_of(self, tid: int) -> list[XL2PEntry]:
        """All entries belonging to transaction ``tid`` (possibly empty)."""
        lpns = self._by_tid.get(tid, set())
        return [self._entries[(tid, lpn)] for lpn in sorted(lpns)]

    def set_status(self, tid: int, status: TxStatus) -> None:
        for entry in self.entries_of(tid):
            entry.status = status

    def remove_tid(self, tid: int) -> list[XL2PEntry]:
        """Drop and return all of ``tid``'s entries (post commit/abort)."""
        lpns = self._by_tid.pop(tid, set())
        return [self._entries.pop((tid, lpn)) for lpn in sorted(lpns)]

    def active_tids(self) -> set[int]:
        return set(self._by_tid)

    def update_ppn(self, tid: int, lpn: int, new_ppn: int) -> None:
        """Repoint an entry after garbage collection relocated its page."""
        entry = self._entries.get((tid, lpn))
        if entry is None:
            raise TransactionError(f"no X-L2P entry for tid={tid} lpn={lpn}")
        entry.new_ppn = new_ppn

    # --------------------------------------------------------- persistence

    def flush_page_count(self, page_size: int) -> int:
        """Flash pages needed to persist the whole table copy-on-write.

        The paper flushes the *entire configured table* (8 or 16 KB) at each
        commit, not just the occupied prefix, so sizing follows capacity.
        """
        return max(1, math.ceil(self.capacity * self.entry_bytes / page_size))

    def serialize(self, page_size: int) -> list[tuple]:
        """Split the table's rows across ``flush_page_count`` page images."""
        records = [entry.as_record() for entry in self._entries.values()]
        pages = self.flush_page_count(page_size)
        per_page = max(1, math.ceil(len(records) / pages)) if records else 1
        images: list[tuple] = []
        for index in range(pages):
            chunk = records[index * per_page : (index + 1) * per_page]
            images.append(("xl2p", index, tuple(chunk)))
        return images

    @classmethod
    def deserialize(
        cls, images: list[tuple], capacity: int, entry_bytes: int
    ) -> "XL2PTable":
        """Rebuild a table from flushed page images (recovery path)."""
        table = cls(capacity=capacity, entry_bytes=entry_bytes)
        for image in images:
            tag, _index, records = image
            if tag != "xl2p":
                raise TransactionError(f"not an X-L2P page image: {tag!r}")
            for record in records:
                entry = XL2PEntry.from_record(record)
                table._entries[(entry.tid, entry.lpn)] = entry
                table._by_tid.setdefault(entry.tid, set()).add(entry.lpn)
        return table
