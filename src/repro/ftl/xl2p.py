"""The transactional logical-to-physical mapping table (X-L2P, §4.2, §5.3).

One entry per (transaction, logical page) pair that the transaction has
updated: ``(tid, lpn, new_ppn, status)``.  Entries are 16 bytes in the paper;
the whole table is 500-1000 entries (8-16 KB), small enough to be flushed
copy-on-write to flash in one or two page programs at every commit.

Multi-version extension
-----------------------
:class:`VersionedL2P` relaxes the one-committed-ppn-per-lpn contract: when
``FtlConfig.retain_versions > 1``, a commit *publishes* a new current copy
and pushes the superseded one onto the lpn's version chain instead of
invalidating it.  Chains hold ``(ppn, superseded_commit_seq, oob_seq)``
entries, oldest first; a snapshot pinned at commit sequence ``snap``
resolves to the oldest entry superseded *after* it (``sup_seq > snap``), or
to the current copy when no retained entry qualifies.  The chain depth is
bounded by ``retain_versions - 1``; the oldest entries are released —
handed back to the FTL for deferred invalidation — unless the host-supplied
snapshot floor (the oldest active snapshot) still pins them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import TransactionError


class TxStatus(enum.Enum):
    """Status of an updater transaction, as tracked by the X-L2P table."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class XL2PEntry:
    """One X-L2P row: transaction ``tid`` rewrote ``lpn`` at ``new_ppn``."""

    tid: int
    lpn: int
    new_ppn: int
    status: TxStatus = TxStatus.ACTIVE

    def as_record(self) -> tuple[int, int, int, str]:
        """Serialized row as stored in a flushed X-L2P flash page."""
        return (self.tid, self.lpn, self.new_ppn, self.status.value)

    @classmethod
    def from_record(cls, record: tuple[int, int, int, str]) -> "XL2PEntry":
        tid, lpn, new_ppn, status = record
        return cls(tid=tid, lpn=lpn, new_ppn=new_ppn, status=TxStatus(status))


class XL2PTable:
    """In-DRAM X-L2P table with capacity accounting.

    The table is indexed by ``(tid, lpn)``; a transaction updating the same
    page twice reuses its entry (only the newest uncommitted copy matters,
    §5.3).  Physical sizing (how many flash pages a flush takes) follows the
    configured entry size and capacity.
    """

    def __init__(self, capacity: int = 1000, entry_bytes: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.entry_bytes = entry_bytes
        self._entries: dict[tuple[int, int], XL2PEntry] = {}
        self._by_tid: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def get(self, tid: int, lpn: int) -> XL2PEntry | None:
        return self._entries.get((tid, lpn))

    def put(self, tid: int, lpn: int, new_ppn: int) -> XL2PEntry | None:
        """Insert or update the entry for ``(tid, lpn)``.

        Returns the *previous* entry (so the caller can invalidate the
        superseded uncommitted physical page), or ``None`` for a first write.
        Raises :class:`TransactionError` when the table is full.
        """
        key = (tid, lpn)
        previous = self._entries.get(key)
        if previous is None and len(self._entries) >= self.capacity:
            raise TransactionError(
                f"X-L2P table full ({self.capacity} entries); commit or abort first"
            )
        entry = XL2PEntry(tid=tid, lpn=lpn, new_ppn=new_ppn)
        self._entries[key] = entry
        self._by_tid.setdefault(tid, set()).add(lpn)
        return previous

    def entries_of(self, tid: int) -> list[XL2PEntry]:
        """All entries belonging to transaction ``tid`` (possibly empty)."""
        lpns = self._by_tid.get(tid, set())
        return [self._entries[(tid, lpn)] for lpn in sorted(lpns)]

    def set_status(self, tid: int, status: TxStatus) -> None:
        for entry in self.entries_of(tid):
            entry.status = status

    def remove_tid(self, tid: int) -> list[XL2PEntry]:
        """Drop and return all of ``tid``'s entries (post commit/abort)."""
        lpns = self._by_tid.pop(tid, set())
        return [self._entries.pop((tid, lpn)) for lpn in sorted(lpns)]

    def active_tids(self) -> set[int]:
        return set(self._by_tid)

    def update_ppn(self, tid: int, lpn: int, new_ppn: int) -> None:
        """Repoint an entry after garbage collection relocated its page."""
        entry = self._entries.get((tid, lpn))
        if entry is None:
            raise TransactionError(f"no X-L2P entry for tid={tid} lpn={lpn}")
        entry.new_ppn = new_ppn

    # --------------------------------------------------------- persistence

    def flush_page_count(self, page_size: int) -> int:
        """Flash pages needed to persist the whole table copy-on-write.

        The paper flushes the *entire configured table* (8 or 16 KB) at each
        commit, not just the occupied prefix, so sizing follows capacity.
        """
        return max(1, math.ceil(self.capacity * self.entry_bytes / page_size))

    def serialize(self, page_size: int) -> list[tuple]:
        """Split the table's rows across ``flush_page_count`` page images."""
        records = [entry.as_record() for entry in self._entries.values()]
        pages = self.flush_page_count(page_size)
        per_page = max(1, math.ceil(len(records) / pages)) if records else 1
        images: list[tuple] = []
        for index in range(pages):
            chunk = records[index * per_page : (index + 1) * per_page]
            images.append(("xl2p", index, tuple(chunk)))
        return images

    @classmethod
    def deserialize(
        cls, images: list[tuple], capacity: int, entry_bytes: int
    ) -> "XL2PTable":
        """Rebuild a table from flushed page images (recovery path)."""
        table = cls(capacity=capacity, entry_bytes=entry_bytes)
        for image in images:
            tag, _index, records = image
            if tag != "xl2p":
                raise TransactionError(f"not an X-L2P page image: {tag!r}")
            for record in records:
                entry = XL2PEntry.from_record(record)
                table._entries[(entry.tid, entry.lpn)] = entry
                table._by_tid.setdefault(entry.tid, set()).add(entry.lpn)
        return table


class VersionedL2P:
    """Superseded-version chains for the multi-version X-L2P (module docstring).

    The FTL owns the side effects: this class only tracks chain membership
    and order.  A chain entry is ``(ppn, sup_seq, oob_seq)`` — the physical
    page, the commit sequence number that superseded it, and the flash OOB
    sequence number the page was programmed with (its stable identity for
    GC relocation and crash-recovery validation).  Entries are oldest first
    and ``sup_seq`` is non-decreasing along a chain.

    Release protocol: :meth:`push` and :meth:`set_floor` return the physical
    pages that fell off a chain; the caller retires them (deferred
    invalidation at the next root publish).  An entry whose ``sup_seq`` lies
    above the floor — the oldest active snapshot's pinned sequence — is
    never released, even past the depth bound: some active reader may still
    resolve through it.
    """

    __slots__ = ("bound", "floor", "_chains")

    def __init__(self, retain_versions: int) -> None:
        if retain_versions < 2:
            raise ValueError("VersionedL2P requires retain_versions >= 2")
        self.bound = retain_versions - 1
        self.floor: int | None = None  # oldest active snapshot (None: no readers)
        self._chains: dict[int, list[tuple[int, int, int]]] = {}

    def __len__(self) -> int:
        """Total retained version pages across all chains."""
        return sum(len(chain) for chain in self._chains.values())

    def __bool__(self) -> bool:
        return bool(self._chains)

    def chain(self, lpn: int) -> tuple[tuple[int, int, int], ...]:
        """This lpn's retained versions, oldest first (empty when none)."""
        return tuple(self._chains.get(lpn, ()))

    def chains(self):
        """Live ``(lpn, chain_list)`` view for invariant checks."""
        return self._chains.items()

    def push(self, lpn: int, ppn: int, sup_seq: int, oob_seq: int) -> list[int]:
        """Retain a superseded committed copy; return released ppns."""
        chain = self._chains.get(lpn)
        if chain is None:
            chain = self._chains[lpn] = []
        elif chain and sup_seq < chain[-1][1]:
            raise TransactionError(
                f"version chain for lpn {lpn} would lose commit order: "
                f"{sup_seq} after {chain[-1][1]}"
            )
        chain.append((ppn, sup_seq, oob_seq))
        return self._trim(lpn, chain)

    def _trim(self, lpn: int, chain: list[tuple[int, int, int]]) -> list[int]:
        released: list[int] = []
        floor = self.floor
        while len(chain) > self.bound:
            sup_seq = chain[0][1]
            if floor is not None and sup_seq > floor:
                break  # still (conservatively) visible to an active snapshot
            released.append(chain.pop(0)[0])
        if not chain:
            del self._chains[lpn]
        return released

    def set_floor(self, floor: int | None) -> dict[int, list[int]]:
        """Publish the oldest active snapshot; re-trim previously pinned chains."""
        self.floor = floor
        released: dict[int, list[int]] = {}
        for lpn in [l for l, chain in self._chains.items() if len(chain) > self.bound]:
            out = self._trim(lpn, self._chains[lpn])
            if out:
                released[lpn] = out
        return released

    def release_lpn(self, lpn: int) -> list[int]:
        """Drop the whole chain (the host trimmed the logical page)."""
        chain = self._chains.pop(lpn, None)
        if not chain:
            return []
        return [entry[0] for entry in chain]

    def resolve(self, lpn: int, snap: int) -> int | None:
        """Physical page a snapshot pinned at ``snap`` reads for ``lpn``.

        ``None`` means the snapshot reads the current committed copy.
        """
        chain = self._chains.get(lpn)
        if chain is None:
            return None
        for ppn, sup_seq, _oob_seq in chain:
            if sup_seq > snap:
                return ppn
        return None

    def oob_seq_of(self, lpn: int, ppn: int) -> int | None:
        """The stored OOB sequence identity of a retained version page."""
        for entry_ppn, _sup_seq, oob_seq in self._chains.get(lpn, ()):
            if entry_ppn == ppn:
                return oob_seq
        return None

    def relocate(self, lpn: int, old_ppn: int, new_ppn: int) -> None:
        """Repoint a chain entry after GC copyback (chain order preserved)."""
        chain = self._chains.get(lpn)
        if chain is not None:
            for index, (ppn, sup_seq, oob_seq) in enumerate(chain):
                if ppn == old_ppn:
                    chain[index] = (new_ppn, sup_seq, oob_seq)
                    return
        raise TransactionError(f"no retained version of lpn {lpn} at ppn {old_ppn}")

    def restore(self, lpn: int, entries) -> None:
        """Install a recovery-validated chain (oldest first)."""
        if entries:
            self._chains[lpn] = [tuple(entry) for entry in entries]

    def augment(self, entries) -> tuple:
        """Extend ``(lpn, ppn)`` translation entries with their chains.

        Entries whose lpn has no retained versions stay 2-tuples, so the
        persisted image only grows where chains exist.
        """
        chains = self._chains
        if not chains:
            return tuple(entries)
        out = []
        for entry in entries:
            chain = chains.get(entry[0])
            if chain:
                out.append((entry[0], entry[1], tuple(chain)))
            else:
                out.append(entry)
        return tuple(out)

    def clear(self) -> None:
        """Forget everything (power loss: chains are rebuilt from flash)."""
        self._chains.clear()
        self.floor = None
