"""FTL interface and shared configuration."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.flash.chip import FlashChip
from repro.flash.stats import FlashStats


@dataclass(frozen=True)
class FtlConfig:
    """Tunables shared by the FTL implementations.

    Attributes:
        overprovision: Fraction of raw capacity hidden from the host and
            used as GC headroom (consumer SSDs: ~7-15%).
        gc_free_block_threshold: GC starts when the free-block pool drops
            to this size.
        map_entries_per_page: L2P entries stored per on-flash mapping page.
            OpenSSD-class firmware persists the map in small per-bank chunks,
            so the effective chunk is far below the 2048 8-byte entries that
            would fit in an 8 KB page.
        barrier_meta_pages: Fixed number of firmware metadata pages (misc
            block: write points, erase counts, ...) persisted on every write
            barrier, on top of dirty map pages.  This fixed cost is why host
            fsyncs are expensive on the unmodified FTL.
        xl2p_capacity: Maximum entries in the X-L2P table (paper: 500-1000).
        xl2p_entry_bytes: Size of one X-L2P entry (paper: 16 bytes).
        map_checkpoint_interval: In X-FTL, the L2P map is checkpointed
            lazily after this many committed transactions (the commit itself
            flushes only the tiny X-L2P table).
        gc_policy: Victim selection. ``"greedy"`` picks the block with the
            fewest valid pages; ``"fifo"`` rotates through blocks in
            allocation-age order (wear-leveling-style), which makes the
            carried-over valid ratio follow the device's aged state — the
            behaviour the paper controls in §6.3.1; ``"cost-benefit"``
            (background mode only) scores blocks by ``age * (1-u) / 2u``
            (Rosenblum's cleaning heuristic, per Dayan & Bonnet) so old,
            mostly-invalid blocks win over freshly-written ones.

            FIFO is *advisory*: when no block in allocation-age order is
            reclaimable (e.g. the oldest blocks are all fully valid or
            partially written), the collector explicitly falls back to the
            greedy pick rather than stalling.  Every fallback increments
            the ``ftl.gc.fifo_fallbacks`` obs counter so results produced
            under fallback are never silently mislabeled as pure FIFO.
        gc_mode: ``"inline"`` (default) runs the stop-the-world collector
            synchronously inside the host write path — the seed model, bit
            for bit.  ``"background"`` hands space management to
            :class:`repro.ftl.gc.BackgroundGC`: paced copyback jobs on
            channel idle windows, a watermark state machine, hot/cold
            write streams and wear leveling.
        gc_background_watermark: Background collection engages when a
            channel's free-block pool drops to this size (urgent/foreground
            collection still triggers at the page-granular headroom floor).
        gc_copyback_pages_per_step: Upper bound on pages relocated per
            background GC step; the gap between steps is where foreground
            writes preempt a collection in flight.
        gc_idle_backlog_us: A channel is considered idle for background GC
            when its reserved-but-unelapsed work is at most this long.
            Negative values mean no window ever qualifies: paced collection
            is disabled and all reclamation runs urgent/foreground.
        gc_hot_write_threshold: Cumulative write count at which an LPN's
            writes are steered to the channel's hot active block (``0``
            disables hot/cold separation).  Map/meta/X-L2P table pages are
            always treated as hot: they are rewritten on every flush.
        gc_wear_spread_threshold: Erase-count spread (max - min) beyond
            which the wear leveler migrates the coldest low-erase block
            into the free pool (``0`` disables wear leveling).
        gc_wear_check_interval: Background steps between wear-spread
            checks.
        detect_write_conflicts: If set, X-FTL rejects a tagged write to a
            logical page another active transaction has already written —
            the isolation guarantee TxFlash offers (§3.3).  Off by default:
            the paper's X-FTL leaves isolation to the host (SQLite locks at
            file granularity, so conflicts cannot arise in its deployment).
        cmt_pages: Cached-mapping-table capacity, in translation pages
            (DFTL-style demand paging; Dayan & Bonnet's flash-resident
            page-mapping design).  ``0`` — the default — keeps the whole
            L2P in controller DRAM, bit-identical to the seed model.  A
            positive value caps the resident translation pages: lookups
            outside the cache fetch the translation page from flash, and
            evicting a dirty page writes it back through the reserved
            translation-block stream.  A capacity large enough to hold
            every translation page of the exported space degenerates to
            the in-RAM mapping (never misses, never needs commit pinning),
            so the demand-paged machinery switches off wholesale — pinned
            by ``tests/test_cmt_equivalence.py``.
        cmt_dirty_batch: Dirty-batching width for CMT evictions: when a
            dirty translation page is evicted, up to this many *additional*
            LRU-most dirty resident pages are written back in the same
            overlap region (they stay resident, now clean), amortizing the
            writeback cost the way DFTL batches same-victim updates.
        retain_versions: Committed versions retained per logical page
            (multi-version X-L2P).  ``1`` — the default — keeps exactly the
            current committed copy, bit-identical to the single-version
            stack (pinned by ``tests/test_mvcc.py``).  A value ``N > 1``
            keeps up to ``N - 1`` superseded committed copies per lpn in a
            version chain: commits *publish* a new version instead of
            invalidating the old one, GC treats retained versions as live
            (copyback preserves chain order), and snapshot/AS-OF readers
            resolve reads against a pinned commit sequence number.  Chains
            older than the bound are released (deferred invalidation), but
            a version still visible to the oldest active snapshot — the
            floor the host publishes through ``set_snapshot_floor`` — stays
            pinned past the bound until its reader ends.
    """

    overprovision: float = 0.12
    gc_free_block_threshold: int = 3
    gc_policy: str = "greedy"
    gc_mode: str = "inline"
    gc_background_watermark: int = 4
    gc_copyback_pages_per_step: int = 4
    gc_idle_backlog_us: float = 0.0
    gc_hot_write_threshold: int = 4
    gc_wear_spread_threshold: int = 16
    gc_wear_check_interval: int = 32
    detect_write_conflicts: bool = False
    map_entries_per_page: int = 256
    barrier_meta_pages: int = 2
    xl2p_capacity: int = 1000
    xl2p_entry_bytes: int = 16
    map_checkpoint_interval: int = 64
    cmt_pages: int = 0
    cmt_dirty_batch: int = 2
    retain_versions: int = 1


class Ftl(abc.ABC):
    """Abstract flash translation layer.

    All FTLs expose a logical page space of :attr:`exported_pages` pages and
    translate host reads/writes into chip operations.  Implementations share
    the chip's :class:`~repro.flash.stats.FlashStats` accumulator.
    """

    def __init__(self, chip: FlashChip, config: FtlConfig | None = None) -> None:
        self.chip = chip
        self.config = config or FtlConfig()
        self.stats: FlashStats = chip.stats
        # Observability rides on the chip; instruments are acquired once
        # here so hot paths pay only an attribute access + no-op call.
        self.obs = chip.obs
        obs = chip.obs
        self._obs_host_writes = obs.counter("ftl.host_page_writes")
        self._obs_host_reads = obs.counter("ftl.host_page_reads")
        self._obs_barriers = obs.counter("ftl.barriers")
        self._obs_map_writes = obs.counter("ftl.map_page_writes")
        self._obs_gc_invocations = obs.counter("ftl.gc.invocations")
        self._obs_gc_reads = obs.counter("ftl.gc.copyback_reads")
        self._obs_gc_writes = obs.counter("ftl.gc.copyback_writes")
        self._obs_gc_fifo_fallbacks = obs.counter("ftl.gc.fifo_fallbacks")

    @property
    @abc.abstractmethod
    def exported_pages(self) -> int:
        """Logical pages visible to the host."""

    @abc.abstractmethod
    def read(self, lpn: int) -> Any:
        """Read the committed content of logical page ``lpn``."""

    @abc.abstractmethod
    def write(self, lpn: int, data: Any) -> None:
        """Write logical page ``lpn`` (non-transactional)."""

    @abc.abstractmethod
    def trim(self, lpn: int) -> None:
        """Discard logical page ``lpn`` (its physical copy becomes invalid)."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Write barrier / flush: make all acknowledged state durable."""

    @abc.abstractmethod
    def power_fail(self) -> None:
        """Drop all volatile (DRAM) state, as if power was cut."""

    @abc.abstractmethod
    def remount(self) -> None:
        """Rebuild volatile state from flash after :meth:`power_fail`."""
