"""Demand-paged cached mapping table (CMT) for the flash-resident L2P.

DFTL-style demand paging (Dayan & Bonnet, "Garbage Collection Techniques
for Flash-Resident Page-Mapping FTLs"): the full logical-to-physical map no
longer fits in controller DRAM, so translation pages live on flash behind a
Global Translation Directory (the FTL's existing ``_map_dir`` segment ->
ppn directory, published atomically through the root record) and only a
bounded working set of them is *resident* at a time.

The simulator keeps ``_l2p`` in host RAM as the oracle either way — what
the CMT models is the *I/O* of residency:

- a lookup outside the cache demand-fetches the translation page with a
  real ``chip.read`` (latency + ``page_reads``), evicting the LRU resident
  page to make room;
- evicting a *dirty* page (its segment has unflushed mapping updates)
  writes it back through :meth:`PageMappingFTL._write_translation_page`,
  batching up to ``cmt_dirty_batch`` additional LRU-most dirty residents
  into the same overlap region (they stay resident, now clean);
- correctness never depends on cache contents: recovery rebuilds the map
  from the root's directory plus the OOB scan exactly as before.

Crash points cover the new out-of-barrier write windows; they are swept by
the ``ftl.cmt`` verify layer.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import FtlError
from repro.sim.crash import register_crash_point

CP_CMT_EVICT = register_crash_point(
    "ftl.cmt.evict", "ftl.cmt", "dirty translation page evicted, writeback not yet started"
)
CP_CMT_WRITEBACK = register_crash_point(
    "ftl.cmt.writeback", "ftl.cmt", "between translation-page writebacks of a dirty batch"
)
CP_CMT_COMMIT_FLUSH = register_crash_point(
    "ftl.cmt.commit.flush",
    "ftl.cmt",
    "between translation-page programs pinned by a transaction commit",
)
CP_CMT_COMMIT_PUBLISH = register_crash_point(
    "ftl.cmt.commit.publish",
    "ftl.cmt",
    "commit's data + translation pages drained, root publish pending",
)


class CachedMappingTable:
    """LRU residency manager over translation-page segments.

    Owned by :class:`~repro.ftl.pagemap.PageMappingFTL` when
    ``FtlConfig.cmt_pages`` is positive and smaller than the number of
    translation pages covering the exported space (otherwise the whole map
    is resident by construction and the FTL skips the CMT wholesale —
    the documented degeneration that keeps large-cache behaviour
    bit-identical to the in-RAM mapping).

    Dirtiness is *not* tracked here: the FTL's ``_dirty_segments`` set
    stays the single source of truth, shared with the barrier flush.
    """

    def __init__(self, ftl, capacity: int, dirty_batch: int) -> None:
        if capacity <= 0:
            raise FtlError(f"CMT capacity must be positive, got {capacity}")
        if dirty_batch < 0:
            raise FtlError(f"cmt_dirty_batch must be >= 0, got {dirty_batch}")
        self.ftl = ftl
        self.capacity = capacity
        self.dirty_batch = dirty_batch
        # segment -> None; insertion order is LRU order (last = most recent).
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        obs = ftl.chip.obs
        self._obs_hits = obs.counter("ftl.cmt.hits")
        self._obs_misses = obs.counter("ftl.cmt.misses")
        self._obs_fetch_reads = obs.counter("ftl.cmt.fetch_reads")
        self._obs_evictions = obs.counter("ftl.cmt.evictions")
        self._obs_writebacks = obs.counter("ftl.cmt.writebacks")

    # ------------------------------------------------------------ lookups

    def access(self, segment: int) -> None:
        """Make ``segment``'s translation page resident for a lookup/update."""
        resident = self._resident
        if segment in resident:
            resident.move_to_end(segment)
            self.ftl.stats.cmt_hits += 1
            self._obs_hits.inc()
            return
        self.ftl.stats.cmt_misses += 1
        self._obs_misses.inc()
        self._fetch(segment)
        resident[segment] = None
        self._shrink()

    def insert_resident(self, segment: int) -> None:
        """Pin ``segment`` resident without miss/fetch accounting.

        Used by the commit path: the commit is about to *write* the
        translation page with overlaid content, so the flash copy need not
        be read first.
        """
        resident = self._resident
        if segment in resident:
            resident.move_to_end(segment)
            return
        resident[segment] = None
        self._shrink()

    def is_resident(self, segment: int) -> bool:
        return segment in self._resident

    def resident_segments(self) -> list[int]:
        """LRU -> MRU order, for tests."""
        return list(self._resident)

    # ------------------------------------------------------------ internals

    def _fetch(self, segment: int) -> None:
        """Demand-read the translation page from flash, if it was ever persisted.

        A miss on a segment with no flushed translation page (all of its
        mappings newer than the last flush, or never written) costs no
        flash read — the directory simply has no entry to load.
        """
        ppn = self.ftl._map_dir.get(segment)
        if ppn is None:
            return
        self.ftl.chip.read(ppn)
        self.ftl.stats.cmt_fetch_reads += 1
        self._obs_fetch_reads.inc()

    def _shrink(self) -> None:
        ftl = self.ftl
        while len(self._resident) > self.capacity:
            victim, _ = self._resident.popitem(last=False)
            ftl.stats.cmt_evictions += 1
            self._obs_evictions.inc()
            if victim not in ftl._dirty_segments:
                continue
            ftl.chip.crash_plan.hit(CP_CMT_EVICT)
            with ftl.chip.overlap():
                self.writeback(victim)
                batched = 0
                for companion in list(self._resident):  # LRU-most first
                    if batched >= self.dirty_batch:
                        break
                    if companion in ftl._dirty_segments:
                        ftl.chip.crash_plan.hit(CP_CMT_WRITEBACK)
                        self.writeback(companion)
                        batched += 1

    def writeback(self, segment: int) -> None:
        """Persist ``segment``'s translation page and mark it clean.

        The dirty marker is cleared *before* the program: a GC pass
        triggered by the program itself may relocate one of the segment's
        data pages and legitimately re-dirty it (the written image would
        then be stale), and that re-dirtying must survive this writeback.
        """
        ftl = self.ftl
        ftl._dirty_segments.discard(segment)
        ftl._write_translation_page(segment)
        self.note_writeback()

    def note_writeback(self) -> None:
        """Count one out-of-barrier translation-page program (stats + obs)."""
        self.ftl.stats.cmt_writebacks += 1
        self._obs_writebacks.inc()

    # ------------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Power loss: residency is DRAM state."""
        self._resident.clear()

    def check_invariants(self) -> None:
        ftl = self.ftl
        if len(self._resident) > self.capacity:
            raise FtlError(
                f"CMT resident count {len(self._resident)} exceeds capacity {self.capacity}"
            )
        # Every *clean* flushed translation page must match the live map:
        # any L2P mutation is obliged to re-dirty its segment, so a clean
        # flash copy is by definition current.  chip.peek reads without
        # latency or statistics.
        # ``_segment_image``/``_translation_images_match`` keep this
        # comparison valid for the multi-version XFTL, whose images carry
        # (lpn, ppn, chain) triples.
        for segment, ppn in ftl._map_dir.items():
            if segment in ftl._dirty_segments:
                continue
            flushed = ftl.chip.peek(ppn)
            live = ftl._segment_image(segment)
            if not ftl._translation_images_match(flushed, live):
                raise FtlError(
                    f"clean translation page for segment {segment} is stale: "
                    f"flash has {flushed}, map has {live}"
                )
