"""Exception hierarchy for the X-FTL reproduction.

Every layer of the stack (flash chip, FTL, device, file system, database)
raises subclasses of :class:`ReproError` so callers can catch errors at the
granularity they care about.  :class:`PowerFailure` is special: it is raised
by the crash-injection machinery (:mod:`repro.sim.crash`) to simulate a power
outage at an arbitrary point, and it deliberately does *not* inherit from
:class:`ReproError` so ordinary error handling never swallows it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FlashError(ReproError):
    """Violation of NAND flash programming rules (e.g. rewrite w/o erase)."""


class FlashGeometryError(FlashError):
    """An address is outside the chip geometry."""


class FtlError(ReproError):
    """FTL-level failure (out of space, unknown logical page, ...)."""


class OutOfSpaceError(FtlError):
    """The device has no free flash blocks left, even after garbage collection."""


class TransactionError(ReproError):
    """Misuse of the transactional command set (unknown tid, double commit, ...)."""


class DeviceError(ReproError):
    """Storage-device command error (device powered off, bad command, ...)."""


class FsError(ReproError):
    """File-system failure."""


class FileNotFoundFsError(FsError):
    """The named file does not exist in the simulated file system."""


class FileExistsFsError(FsError):
    """The named file already exists."""


class DatabaseError(ReproError):
    """SQLite-engine level failure."""


class SqlError(DatabaseError):
    """SQL parse or binding error."""


class SchemaError(DatabaseError):
    """Unknown table/column/index or conflicting DDL."""


class IntegrityError(DatabaseError):
    """Constraint violation (duplicate primary key, ...)."""


class CorruptionError(ReproError):
    """On-media structures failed validation (bad checksum, torn page, ...)."""


class PowerFailure(BaseException):
    """Simulated power outage.

    Raised from inside the storage stack when a scheduled crash point fires.
    Inherits from ``BaseException`` so that ``except ReproError`` /
    ``except Exception`` blocks in the stack do not accidentally absorb it;
    tests and the benchmark harness catch it explicitly.
    """

    def __init__(self, message: str = "simulated power failure") -> None:
        super().__init__(message)
