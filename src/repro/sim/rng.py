"""Deterministic random-number helpers.

Every stochastic component (workload generators, aging, victim tie-breaking)
takes an explicit seed and derives an independent :class:`random.Random`
stream from it, so any experiment can be replayed bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Uses SHA-256 over the textual label path so that streams for different
    components are statistically independent and stable across runs and
    Python versions (unlike ``hash()``, which is salted).
    """
    text = f"{base_seed}:" + "/".join(str(label) for label in labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """Return an independent ``random.Random`` for the given label path."""
    return random.Random(derive_seed(base_seed, *labels))
