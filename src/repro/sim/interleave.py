"""Deterministic cooperative interleaving of generator tasks.

The simulator is single-threaded by design (one :class:`SimClock`, no
real concurrency), so "N concurrent sessions" means N generator tasks
interleaved at explicit yield points.  :class:`RoundRobinInterleaver`
runs tasks in strict round-robin order, which keeps every run exactly
reproducible for a given seed — the property the verify layer and the
channel-equivalence baseline depend on.

A task communicates with the scheduler through its yield value:

- ``yield None`` — plain switch point; the task is requeued at the tail.
- ``yield Park(token)`` — the task parks until the scheduler *services*
  a batch of parked tokens (e.g. a group commit), then resumes.

The service callback fires when every runnable task has parked (the
natural group-commit coalescing point: nobody can make progress until
the batch is served) or when ``max_batch`` parked tasks accumulate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable


class Park:
    """Yield value asking the scheduler to hold the task for batch service."""

    __slots__ = ("token",)

    def __init__(self, token: object) -> None:
        self.token = token


class RoundRobinInterleaver:
    """Run generator tasks round-robin, batching their parked tokens.

    ``service`` is called with the list of parked tokens (in park order)
    every time a batch fires; the parked tasks are then requeued in the
    same order.  Exceptions from tasks or from ``service`` propagate to
    the caller — the verify drivers rely on :class:`PowerFailure`
    escaping mid-interleave.
    """

    def __init__(
        self,
        service: Callable[[list[object]], None],
        max_batch: int | None = None,
    ) -> None:
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.service = service
        self.max_batch = max_batch
        self.batches_served = 0

    def run(self, tasks: Iterable) -> None:
        runnable = deque(tasks)
        parked: list[tuple[object, object]] = []  # (task, token)
        while runnable or parked:
            batch_full = self.max_batch is not None and len(parked) >= self.max_batch
            if parked and (not runnable or batch_full):
                batch, parked = parked, []
                self.service([token for _task, token in batch])
                self.batches_served += 1
                runnable.extend(task for task, _token in batch)
                continue
            task = runnable.popleft()
            try:
                item = next(task)
            except StopIteration:
                continue
            if isinstance(item, Park):
                parked.append((task, item.token))
            else:
                runnable.append(task)
