"""A virtual clock for latency-faithful simulation.

All elapsed-time results in this reproduction come from a :class:`SimClock`
rather than wall time: every flash operation, bus transfer and host-side
overhead charges its latency to the clock, so experiment elapsed times are
deterministic and independent of the speed of the machine running the
simulation.

Times are kept in *microseconds* as floats (flash latencies are naturally
expressed in microseconds; experiments report seconds or milliseconds).

The clock is also the event spine of the discrete-event scheduler in
:mod:`repro.sim.events`: completion callbacks registered with
:meth:`SimClock.schedule_at` fire as simulated time passes them, which is
how the device command queue retires in-flight commands without polling.
"""

from __future__ import annotations

import heapq
from typing import Callable


class SimClock:
    """Monotonically advancing virtual clock.

    The clock only ever moves forward.  Components call :meth:`advance` with
    the latency of the operation they just performed, or :meth:`wait_until`
    to join a completion time computed on a resource timeline.  ``busy_us``
    breakdowns can be tracked by callers; the clock itself only knows total
    time plus the pending completion events.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)
        # Completion-event heap: (when_us, sequence, callback).  The
        # sequence number makes heap ordering total (callbacks are not
        # comparable) and keeps same-time events in registration order.
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._firing = False

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / 1_000.0

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1_000_000.0

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` microseconds and return the new time.

        Negative deltas are rejected: simulated time never rewinds.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_us}")
        self._now_us += delta_us
        if self._events:
            self._fire_due()
        return self._now_us

    def advance_to(self, when_us: float) -> float:
        """Advance the clock to an absolute time **in the future**.

        Past times are rejected: an ``advance_to`` into the past used to
        no-op silently, which made scheduling bugs indistinguishable from
        intentional joins.  Callers that legitimately join a completion
        time that may already have passed (overlapping work finishing
        "behind" the clock) should use :meth:`wait_until` instead.
        """
        if when_us < self._now_us:
            raise ValueError(
                f"advance_to({when_us}) is in the past (now={self._now_us}); "
                "use wait_until() to join a completion that may already be done"
            )
        return self.wait_until(when_us)

    def wait_until(self, when_us: float) -> float:
        """Join an absolute completion time: advance if it is in the future.

        This is the explicit overlap API: modelling concurrent work, the
        host blocks until the latest completion — which may already be in
        the past, in which case the wait costs nothing.  Used by
        :class:`~repro.sim.events.ResourceTimeline` reservations and the
        device queue's barrier drain.
        """
        if when_us > self._now_us:
            self._now_us = when_us
        if self._events:
            self._fire_due()
        return self._now_us

    def schedule_at(self, when_us: float, callback: Callable[[], None]) -> None:
        """Register a completion event fired when time reaches ``when_us``.

        Events in the past fire on the next time movement (or immediately
        if one is due now and the clock is not already firing).  Callbacks
        must not assume any particular clock position beyond ``now_us >=
        when_us``.
        """
        self._event_seq += 1
        heapq.heappush(self._events, (float(when_us), self._event_seq, callback))
        if not self._firing:
            self._fire_due()

    def schedule_many(
        self, events: "list[tuple[float, Callable[[], None]]]"
    ) -> None:
        """Register a batch of completion events in one call.

        Semantically identical to calling :meth:`schedule_at` once per
        ``(when_us, callback)`` pair, in order — same sequence numbering,
        so same-time events still fire in registration order — but due
        events fire once at the end instead of per insertion, and when the
        heap is empty and the batch is already sorted (the common case:
        a run of same-timestamp completions) the heap is built by plain
        append, skipping per-item sift-up entirely.
        """
        if not events:
            return
        heap = self._events
        sorted_batch = True
        last = float("-inf")
        for when_us, _ in events:
            if when_us < last:
                sorted_batch = False
                break
            last = when_us
        if not heap and sorted_batch:
            # A sorted list is a valid binary min-heap; sequence numbers
            # rise monotonically so ties stay in registration order.
            for when_us, callback in events:
                self._event_seq += 1
                heap.append((float(when_us), self._event_seq, callback))
        else:
            for when_us, callback in events:
                self._event_seq += 1
                heapq.heappush(heap, (float(when_us), self._event_seq, callback))
        if not self._firing:
            self._fire_due()

    @property
    def pending_events(self) -> int:
        """Completion events not yet fired (due or future)."""
        return len(self._events)

    def _fire_due(self) -> None:
        """Fire every event with ``when_us <= now``; reentrancy-safe."""
        if self._firing:
            return  # the outer loop will drain anything a callback added
        self._firing = True
        try:
            while self._events and self._events[0][0] <= self._now_us:
                _, _, callback = heapq.heappop(self._events)
                callback()
        finally:
            self._firing = False

    def elapsed_since(self, t0_us: float) -> float:
        """Microseconds elapsed since an earlier reading of this clock."""
        return self._now_us - t0_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_us={self._now_us:.3f})"
