"""A virtual clock for latency-faithful simulation.

All elapsed-time results in this reproduction come from a :class:`SimClock`
rather than wall time: every flash operation, bus transfer and host-side
overhead charges its latency to the clock, so experiment elapsed times are
deterministic and independent of the speed of the machine running the
simulation.

Times are kept in *microseconds* as floats (flash latencies are naturally
expressed in microseconds; experiments report seconds or milliseconds).
"""

from __future__ import annotations


class SimClock:
    """Monotonically advancing virtual clock.

    The clock only ever moves forward.  Components call :meth:`advance` with
    the latency of the operation they just performed.  ``busy_us`` breakdowns
    can be tracked by callers; the clock itself only knows total time.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / 1_000.0

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1_000_000.0

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` microseconds and return the new time.

        Negative deltas are rejected: simulated time never rewinds.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, when_us: float) -> float:
        """Advance the clock to an absolute time, if it is in the future.

        Used when modelling overlapping work (e.g. multiple FIO threads
        keeping a device busy): the clock jumps to the completion time of the
        latest finishing operation.  Times in the past are a no-op rather
        than an error, which makes ``advance_to(max(completions))`` safe.
        """
        if when_us > self._now_us:
            self._now_us = when_us
        return self._now_us

    def elapsed_since(self, t0_us: float) -> float:
        """Microseconds elapsed since an earlier reading of this clock."""
        return self._now_us - t0_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_us={self._now_us:.3f})"
