"""Simulation substrate: virtual clock, latency profiles, RNG, crash points."""

from repro.sim.clock import SimClock
from repro.sim.crash import CrashPlan, CrashPoint
from repro.sim.latency import LatencyProfile, OPENSSD_PROFILE, S830_PROFILE

__all__ = [
    "SimClock",
    "CrashPlan",
    "CrashPoint",
    "LatencyProfile",
    "OPENSSD_PROFILE",
    "S830_PROFILE",
]
