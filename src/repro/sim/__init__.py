"""Simulation substrate: clock, event scheduler, latency, RNG, crash points."""

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler, ResourceTimeline
from repro.sim.crash import (
    CrashPlan,
    CrashPoint,
    CrashPointSpec,
    crash_point_spec,
    register_crash_point,
    registered_crash_points,
)
from repro.sim.latency import (
    LatencyProfile,
    OPENSSD_PROFILE,
    S830_PROFILE,
    effective_channel_parallelism,
    effective_channel_profile,
)

__all__ = [
    "SimClock",
    "EventScheduler",
    "ResourceTimeline",
    "CrashPlan",
    "CrashPoint",
    "CrashPointSpec",
    "crash_point_spec",
    "register_crash_point",
    "registered_crash_points",
    "LatencyProfile",
    "OPENSSD_PROFILE",
    "S830_PROFILE",
    "effective_channel_parallelism",
    "effective_channel_profile",
]
