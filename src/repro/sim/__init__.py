"""Simulation substrate: virtual clock, latency profiles, RNG, crash points."""

from repro.sim.clock import SimClock
from repro.sim.crash import (
    CrashPlan,
    CrashPoint,
    CrashPointSpec,
    crash_point_spec,
    register_crash_point,
    registered_crash_points,
)
from repro.sim.latency import LatencyProfile, OPENSSD_PROFILE, S830_PROFILE

__all__ = [
    "SimClock",
    "CrashPlan",
    "CrashPoint",
    "CrashPointSpec",
    "crash_point_spec",
    "register_crash_point",
    "registered_crash_points",
    "LatencyProfile",
    "OPENSSD_PROFILE",
    "S830_PROFILE",
]
