"""A small discrete-event scheduler: per-resource busy timelines.

The seed simulation was strictly serial — every operation advanced the one
global :class:`~repro.sim.clock.SimClock` — which cannot model a device
whose speed comes from channel/way parallelism.  This module adds the
minimal machinery for overlap:

- :class:`ResourceTimeline` — one serially-used resource (a flash channel,
  a host thread).  Work is *reserved* on the timeline: a reservation starts
  at ``max(now, busy_until)`` and pushes ``busy_until`` forward, so work on
  one resource serializes while work on different resources overlaps.
- :class:`EventScheduler` — a named collection of timelines sharing one
  clock, with a cross-resource ``barrier()`` (wait for every timeline) used
  to model flush/commit ordering points.

The degenerate case is exact: one timeline, with the host joining every
reservation end immediately (``clock.wait_until(end)``), performs the same
float arithmetic as the seed's ``clock.advance(duration)`` — which is what
the ``channels=1, queue_depth=1`` equivalence regression pins down.

Completion *events* (callbacks at a future simulated time) live on the
clock itself (:meth:`~repro.sim.clock.SimClock.schedule_at`); the device
command queue uses them to retire in-flight commands as time passes.

Migration note (state-API redesign PR): the scheduler now fronts the
clock's event spine too, with a consistent naming scheme —
:meth:`EventScheduler.schedule_at` / :meth:`EventScheduler.post_many` to
register one/many completion events, and :meth:`EventScheduler.wait_until`
to join an absolute time.  Previously callers mixed direct
``clock.schedule_at``/``clock.wait_until`` calls with scheduler
``barrier()``s; new code should go through the scheduler so one object
owns the simulation's ordering vocabulary.  The clock methods remain the
implementation and stay public for clock-only code.  The public surface of
this module is exactly ``__all__`` below.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import SimClock

__all__ = ["ResourceTimeline", "EventScheduler"]


class ResourceTimeline:
    """Busy-until timeline for one serially-used resource.

    Attributes:
        name: Resource label (``"flash.ch3"``, ``"fio.thread7"``).
        busy_until_us: Absolute time the resource becomes idle.
        busy_us: Total reserved (busy) time accumulated, for utilization
            reports: ``busy_us / elapsed_us`` is the resource's duty cycle.
    """

    __slots__ = ("name", "clock", "busy_until_us", "busy_us", "reservations")

    def __init__(self, clock: SimClock, name: str) -> None:
        self.clock = clock
        self.name = name
        self.busy_until_us = 0.0
        self.busy_us = 0.0
        self.reservations = 0

    def reserve(self, duration_us: float, after_us: float | None = None) -> tuple[float, float]:
        """Reserve ``duration_us`` of work; returns ``(start, end)``.

        The work starts when both the resource is free and any explicit
        dependency (``after_us``, e.g. the end of a read feeding this
        program) has completed — never before the current simulated time.
        """
        if duration_us < 0:
            raise ValueError(f"cannot reserve negative time: {duration_us}")
        start = self.clock.now_us
        if self.busy_until_us > start:
            start = self.busy_until_us
        if after_us is not None and after_us > start:
            start = after_us
        end = start + duration_us
        self.busy_until_us = end
        self.busy_us += duration_us
        self.reservations += 1
        return start, end

    def wait_idle(self) -> float:
        """Block the clock until this resource has drained."""
        return self.clock.wait_until(self.busy_until_us)

    def backlog_us(self) -> float:
        """Reserved-but-unelapsed work: how far ``busy_until`` leads ``now``.

        Zero when idle.  This is the *idle-window query* background GC uses
        to decide whether a channel can absorb a copyback step without
        delaying foreground work already queued behind it.
        """
        backlog = self.busy_until_us - self.clock.now_us
        return backlog if backlog > 0.0 else 0.0

    @property
    def idle(self) -> bool:
        return self.busy_until_us <= self.clock.now_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceTimeline({self.name}, busy_until={self.busy_until_us:.1f})"


class EventScheduler:
    """Named resource timelines over one shared clock.

    Keeps the per-resource bookkeeping in one place so a component (the
    flash array, the FIO thread model) can ask for timelines by name and
    issue cross-resource barriers.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._timelines: dict[str, ResourceTimeline] = {}

    def timeline(self, name: str) -> ResourceTimeline:
        """Get-or-create the timeline called ``name``."""
        timeline = self._timelines.get(name)
        if timeline is None:
            timeline = self._timelines[name] = ResourceTimeline(self.clock, name)
        return timeline

    def timelines(self) -> tuple[ResourceTimeline, ...]:
        return tuple(self._timelines.values())

    def horizon_us(self) -> float:
        """Latest ``busy_until`` across all resources (``now`` if all idle)."""
        horizon = self.clock.now_us
        for timeline in self._timelines.values():
            if timeline.busy_until_us > horizon:
                horizon = timeline.busy_until_us
        return horizon

    def barrier(self) -> float:
        """Cross-resource ordering point: wait until every resource drains.

        Returns the new clock time.  With a single resource that the host
        joins after every reservation this is a no-op — the degenerate
        serial case.
        """
        return self.clock.wait_until(self.horizon_us())

    # ------------------------------------------------------ event spine
    #
    # Thin, consistently-named delegates over the clock's completion-event
    # heap (see the migration note in the module docstring).

    def schedule_at(self, when_us: float, callback: Callable[[], None]) -> None:
        """Register one completion event at absolute time ``when_us``."""
        self.clock.schedule_at(when_us, callback)

    def post_many(self, events: "list[tuple[float, Callable[[], None]]]") -> None:
        """Register a batch of ``(when_us, callback)`` completion events.

        Equivalent to ``schedule_at`` per pair, in order, but fires due
        events once at the end, and a sorted batch landing on an empty
        heap skips the heap machinery entirely (plain appends) — the fast
        path for runs of same-timestamp completions.
        """
        self.clock.schedule_many(events)

    def wait_until(self, when_us: float) -> float:
        """Join an absolute completion time (advance only if in the future)."""
        return self.clock.wait_until(when_us)

    def utilization(self, elapsed_us: float | None = None) -> dict[str, float]:
        """Busy fraction per resource over ``elapsed_us`` (default: now)."""
        window = elapsed_us if elapsed_us is not None else self.clock.now_us
        if window <= 0:
            return {name: 0.0 for name in self._timelines}
        return {
            name: min(timeline.busy_us / window, 1.0)
            for name, timeline in self._timelines.items()
        }
