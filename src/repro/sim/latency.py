"""Latency profiles for the simulated storage stack.

The paper's elapsed-time results are dominated by flash I/O: NAND page
programs/reads/erases issued by the FTL (including garbage-collection
copybacks and mapping-table flushes) plus per-command bus and host syscall
overheads.  A :class:`LatencyProfile` collects these per-operation costs; the
flash chip and device charge them to the shared :class:`~repro.sim.SimClock`.

Two concrete profiles are provided:

``OPENSSD_PROFILE``
    The OpenSSD (Indilinx Barefoot) board used for the paper's prototype:
    Samsung K9LCG08U1M MLC NAND with 8 KB pages and 128 pages/block, SATA 2.0
    (3 Gbps) and an 87.5 MHz ARM controller.  MLC program latency dominates.

``S830_PROFILE``
    The Samsung S830 consumer SSD used for Figure 9: a newer-generation
    controller with channel parallelism and SATA 3.0, modelled as lower
    *effective* per-page costs **derived** from the OpenSSD NAND numbers by
    :func:`effective_channel_profile` rather than hand-copied, so the legacy
    serial shortcut and the real multi-channel model (a
    :class:`~repro.flash.array.FlashArray` with ``channels > 1``) cannot
    drift apart.

Absolute values are calibrated to the magnitude of the paper's numbers (the
synthetic workload at 5 pages/txn lands in hundreds of seconds for rollback
mode and tens of seconds for X-FTL); the experiments only rely on ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LatencyProfile:
    """Per-operation latencies, in microseconds.

    Attributes:
        name: Human-readable profile name used in reports.
        page_read_us: NAND page read (cell array to chip register).
        page_program_us: NAND page program (register to cell array).
        block_erase_us: NAND block erase.
        bus_transfer_us: Moving one page across the host interface (SATA).
        command_overhead_us: Fixed per-command cost (command parsing,
            interrupt handling, FTL firmware work on the embedded CPU).
        barrier_overhead_us: Extra fixed cost of a flush/barrier command on
            top of whatever pages it persists.
        host_syscall_us: Host-side cost of one read/write syscall through the
            kernel block layer.
        host_fsync_us: Host-side fixed cost of an fsync (journal wakeups,
            waiting on request completion) excluding device time.
        host_cpu_statement_us: Host CPU cost of parsing/binding/stepping one
            SQL statement (dominates read-only workloads like Table 4's
            selection-only mix, where no I/O happens at all).
        host_cpu_row_us: Host CPU cost per row visited by the executor
            (makes nested-loop joins proportionally slower, §6.3.3).
    """

    name: str
    page_read_us: float
    page_program_us: float
    block_erase_us: float
    bus_transfer_us: float
    command_overhead_us: float
    barrier_overhead_us: float
    host_syscall_us: float
    host_fsync_us: float
    host_cpu_statement_us: float = 40.0
    host_cpu_row_us: float = 4.0

    def copyback_us(self) -> float:
        """Cost of moving one valid page during garbage collection.

        OpenSSD-class controllers implement copyback as an internal
        read + program without crossing the host bus.
        """
        return self.page_read_us + self.page_program_us


OPENSSD_PROFILE = LatencyProfile(
    name="OpenSSD (Barefoot, MLC NAND, SATA 2.0)",
    page_read_us=220.0,
    page_program_us=1_300.0,
    block_erase_us=2_000.0,
    bus_transfer_us=30.0,
    command_overhead_us=60.0,
    barrier_overhead_us=200.0,
    host_syscall_us=15.0,
    host_fsync_us=120.0,
)

# How much of an n-channel controller's parallelism one host-visible
# command stream actually sees.  A single stream of dependent commands
# cannot keep all channels busy (striping granularity, firmware
# serialization, bus sharing), so the *effective* per-op speedup follows a
# sub-linear law: parallelism(n) = n ** CHANNEL_SCALING_EXPONENT.  The
# exponent is calibrated once against the paper's Figure 9 relation — the
# OpenSSD sustains roughly 25-35% of the 8-channel S830's throughput, i.e.
# the S830 is ~1.9x faster per op: 8 ** 0.31 ≈ 1.9.
CHANNEL_SCALING_EXPONENT = 0.31


def effective_channel_parallelism(channels: int) -> float:
    """Effective per-op speedup a serial host stream gets from ``channels``."""
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    return float(channels) ** CHANNEL_SCALING_EXPONENT


def effective_channel_profile(
    base: LatencyProfile, channels: int, name: str | None = None
) -> LatencyProfile:
    """Derive a serial-model "effective" profile from base NAND + channels.

    This is the *legacy shortcut*: instead of simulating overlapping
    channels, divide every device-side cost by the effective parallelism so
    a strictly serial clock lands at roughly the same elapsed time a
    saturated n-channel device would.  Host-side costs (syscalls, fsync
    wakeups, SQL CPU) are unaffected by device parallelism and stay as-is.

    The real model — a :class:`~repro.flash.array.FlashArray` with
    ``channels > 1`` and a queued device — uses the **base** profile and
    gets its speedup from actual overlap; this derivation only exists so
    single-clock experiments (Figure 9's S830 rows) share one calibration
    source with it.
    """
    if channels == 1:
        return base if name is None else replace(base, name=name)
    parallelism = effective_channel_parallelism(channels)
    return replace(
        base,
        name=name or f"{base.name} [effective x{channels} channels]",
        page_read_us=base.page_read_us / parallelism,
        page_program_us=base.page_program_us / parallelism,
        block_erase_us=base.block_erase_us / parallelism,
        bus_transfer_us=base.bus_transfer_us / parallelism,
        command_overhead_us=base.command_overhead_us / parallelism,
        barrier_overhead_us=base.barrier_overhead_us / parallelism,
    )


# The S830's MLC NAND is the same device class as the OpenSSD's (the boards
# are one controller generation apart; the NAND array times are comparable).
# What makes the S830 fast is its 8-channel controller and SATA 3.0 link —
# which is exactly what the derivation models.
S830_PROFILE = effective_channel_profile(
    OPENSSD_PROFILE,
    channels=8,
    name="Samsung S830 (8-channel controller, SATA 3.0)",
)
