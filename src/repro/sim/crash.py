"""Crash-point injection.

Recovery experiments (Table 5) and crash-consistency tests need to cut power
at precise points inside the storage stack.  Components that perform
persistent-state transitions call :meth:`CrashPlan.hit` with a named crash
point; if the plan has armed that point (optionally "after N occurrences"),
a :class:`~repro.errors.PowerFailure` is raised, the device marks itself
powered off, and in-flight page programs can be left *torn*.

Crash point names used across the stack (a component may add more):

- ``flash.program.before`` / ``flash.program.after`` — around a NAND program
- ``flash.erase.before`` — before a block erase
- ``ftl.barrier.mid`` — between mapping pages of a barrier flush
- ``xftl.commit.before-flush`` / ``xftl.commit.after-flush`` — around the
  X-L2P copy-on-write flush that is the commit point
- ``fs.fsync.mid`` — between the data writes and the journal commit record
- ``sqlite.commit.mid`` — between journal sync and database-file writes
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerFailure


@dataclass
class CrashPoint:
    """A single armed crash point.

    Attributes:
        name: The crash-point label to match.
        after: Fire on the ``after``-th time this label is hit (1-based).
        tear_page: If the crash interrupts a NAND program, whether the page
            being programmed should be left torn (half-written).
    """

    name: str
    after: int = 1
    tear_page: bool = False
    hits: int = field(default=0, init=False)

    def matches(self, name: str) -> bool:
        return self.name == name


class CrashPlan:
    """Collects armed crash points and fires :class:`PowerFailure`.

    A plan is shared by every component in one simulated machine.  A plan
    with no armed points costs a single attribute check per hit, so it is
    cheap enough to leave enabled in benchmarks.
    """

    def __init__(self, points: list[CrashPoint] | None = None) -> None:
        self._points: list[CrashPoint] = list(points or [])
        self.fired: CrashPoint | None = None

    def arm(self, name: str, after: int = 1, tear_page: bool = False) -> CrashPoint:
        """Arm a crash point; returns it so tests can inspect hit counts."""
        point = CrashPoint(name=name, after=after, tear_page=tear_page)
        self._points.append(point)
        return point

    def disarm_all(self) -> None:
        self._points.clear()

    @property
    def armed(self) -> bool:
        return bool(self._points)

    def hit(self, name: str) -> None:
        """Record that execution reached crash point ``name``.

        Raises :class:`PowerFailure` if an armed point's occurrence count is
        reached.  Once a plan has fired it never fires again (the machine is
        already down; recovery runs with the same plan object).
        """
        if not self._points or self.fired is not None:
            return
        for point in self._points:
            if point.matches(name):
                point.hits += 1
                if point.hits >= point.after:
                    self.fired = point
                    raise PowerFailure(f"crash point {name!r} fired (hit #{point.hits})")

    def countdown(self, name: str) -> CrashPoint | None:
        """Count one occurrence of ``name``; return the point if it fires now.

        Unlike :meth:`hit`, this does not raise — the caller applies its own
        side effects (e.g. leaving the in-flight page torn) before raising
        :class:`PowerFailure` itself.
        """
        if not self._points or self.fired is not None:
            return None
        for point in self._points:
            if point.matches(name):
                point.hits += 1
                if point.hits >= point.after:
                    self.fired = point
                    return point
        return None


NO_CRASH = CrashPlan()
"""A shared, never-firing plan for components created without one."""
