"""Crash-point injection and the crash-point registry.

Recovery experiments (Table 5) and crash-consistency tests need to cut power
at precise points inside the storage stack.  Components that perform
persistent-state transitions call :meth:`CrashPlan.hit` with a named crash
point; if the plan has armed that point (optionally "after N occurrences"),
the plan notifies its power-loss subscribers (the FTL and the storage device
mark themselves powered off and drop volatile state), a
:class:`~repro.errors.PowerFailure` is raised, and in-flight page programs
can be left *torn*.  After an injected crash the stack is already powered
down: recovery is a plain ``remount()`` / ``power_on()``, with no manual
``power_fail()`` required.

Crash points are *declared*, not ad-hoc string literals: each component
registers its points with :func:`register_crash_point` at import time and
uses the returned name in its ``hit()`` calls.  The registry makes the
whole crash surface enumerable — :func:`registered_crash_points` is what
``python -m repro.verify`` sweeps.

Registered points (one per persistent-state transition):

- ``flash.program.before`` / ``flash.program.after`` — around a NAND program
- ``flash.program.mid`` — during a NAND program (the only *tearable* point:
  armed with ``tear_page=True`` the in-flight page is left half-written)
- ``flash.erase.before`` — before a block erase
- ``ftl.barrier.mid`` — between mapping pages of a barrier flush
- ``xftl.commit.before-flush`` / ``xftl.commit.after-flush`` — around the
  X-L2P copy-on-write flush that is the commit point
- ``xftl.group.flush`` / ``xftl.group.publish`` — inside a group commit:
  after the batch X-L2P flush (no member durable yet) and after the root
  republish (every member durable, DRAM fold pending)
- ``gc.victim.selected`` / ``gc.copyback.page`` / ``gc.erase.before`` /
  ``gc.wear.migrate`` — the preemption points of a background GC job
  (victim chosen, between page copybacks, erase pending, between
  wear-leveling migrations); only reachable with
  ``FtlConfig.gc_mode="background"``
- ``dev.queue.dispatch`` / ``dev.queue.barrier`` — around the NCQ-style
  command queue's dispatch and drain-barrier transitions
- ``fs.fsync.mid`` — between an fsync's data writes and its commit record
  (journal frame or device ``commit(t)``)
- ``sqlite.commit.mid`` — between journal sync and database-file writes
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.errors import PowerFailure


# --------------------------------------------------------------- registry


@dataclass(frozen=True)
class CrashPointSpec:
    """One declared crash point: where a component may lose power.

    Attributes:
        name: The label components pass to :meth:`CrashPlan.hit`.
        component: Dotted module-ish owner (``"flash.chip"``, ``"fs.ext4"``).
        doc: One-line description of the persistent-state transition.
        tearable: Whether arming with ``tear_page=True`` is meaningful here
            (only mid-program points can tear a page).
    """

    name: str
    component: str
    doc: str
    tearable: bool = False


_REGISTRY: dict[str, CrashPointSpec] = {}


def register_crash_point(
    name: str, component: str, doc: str, tearable: bool = False
) -> str:
    """Declare a crash point; returns ``name`` so call sites stay greppable.

    Re-registration with identical attributes is a no-op (modules may be
    reloaded); conflicting re-registration raises ``ValueError``.
    """
    spec = CrashPointSpec(name=name, component=component, doc=doc, tearable=tearable)
    existing = _REGISTRY.get(name)
    if existing is not None and existing != spec:
        raise ValueError(f"crash point {name!r} already registered as {existing}")
    _REGISTRY[name] = spec
    return name


def registered_crash_points(component: str | None = None) -> tuple[CrashPointSpec, ...]:
    """All declared crash points, optionally filtered by component prefix."""
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if component is None:
        return tuple(specs)
    return tuple(
        spec
        for spec in specs
        if spec.component == component or spec.component.startswith(component + ".")
    )


def crash_point_spec(name: str) -> CrashPointSpec | None:
    """The spec registered under ``name``, if any."""
    return _REGISTRY.get(name)


# ------------------------------------------------------------------- plan


@dataclass
class CrashPoint:
    """A single armed crash point.

    Attributes:
        name: The crash-point label to match.
        after: Fire on the ``after``-th time this label is hit (1-based).
        tear_page: If the crash interrupts a NAND program, whether the page
            being programmed should be left torn (half-written).
    """

    name: str
    after: int = 1
    tear_page: bool = False
    hits: int = field(default=0, init=False)

    def matches(self, name: str) -> bool:
        return self.name == name


class CrashPlan:
    """Collects armed crash points and fires :class:`PowerFailure`.

    A plan is shared by every component in one simulated machine.  A plan
    with no armed points costs a single attribute check per hit, so it is
    cheap enough to leave enabled in benchmarks.

    Components holding volatile state subscribe with :meth:`subscribe`; when
    a point fires every live subscriber is called (power loss propagates to
    the whole machine) before :class:`PowerFailure` is raised.
    """

    def __init__(self, points: list[CrashPoint] | None = None) -> None:
        self._points: list[CrashPoint] = list(points or [])
        self.fired: CrashPoint | None = None
        # Weak references so sharing a module-level plan (NO_CRASH) across
        # many short-lived FTL/device instances cannot accumulate garbage.
        self._subscribers: list[weakref.WeakMethod | weakref.ref] = []

    def arm(self, name: str, after: int = 1, tear_page: bool = False) -> CrashPoint:
        """Arm a crash point; returns it so tests can inspect hit counts."""
        point = CrashPoint(name=name, after=after, tear_page=tear_page)
        self._points.append(point)
        return point

    def disarm_all(self) -> None:
        self._points.clear()

    @property
    def armed(self) -> bool:
        return bool(self._points)

    def subscribe(self, callback) -> None:
        """Register a power-loss callback, invoked once when the plan fires.

        Bound methods are held via ``WeakMethod`` so subscribing never keeps
        a component alive.
        """
        try:
            ref: weakref.WeakMethod | weakref.ref = weakref.WeakMethod(callback)
        except TypeError:
            ref = weakref.ref(callback)
        self._subscribers.append(ref)

    def _notify_power_loss(self) -> None:
        live = []
        for ref in self._subscribers:
            callback = ref()
            if callback is None:
                continue
            live.append(ref)
            callback()
        self._subscribers = live

    def hit(self, name: str) -> None:
        """Record that execution reached crash point ``name``.

        Raises :class:`PowerFailure` if an armed point's occurrence count is
        reached.  Once a plan has fired it never fires again (the machine is
        already down; recovery runs with the same plan object).
        """
        if not self._points or self.fired is not None:
            return
        for point in self._points:
            if point.matches(name):
                point.hits += 1
                if point.hits >= point.after:
                    self.fired = point
                    self._notify_power_loss()
                    raise PowerFailure(f"crash point {name!r} fired (hit #{point.hits})")

    def countdown(self, name: str) -> CrashPoint | None:
        """Count one occurrence of ``name``; return the point if it fires now.

        Unlike :meth:`hit`, this does not raise — the caller applies its own
        side effects (e.g. leaving the in-flight page torn) before raising
        :class:`PowerFailure` itself.  Power-loss subscribers are notified
        here, so by the time the caller raises, the machine is already down.
        """
        if not self._points or self.fired is not None:
            return None
        for point in self._points:
            if point.matches(name):
                point.hits += 1
                if point.hits >= point.after:
                    self.fired = point
                    self._notify_power_loss()
                    return point
        return None


NO_CRASH = CrashPlan()
"""A shared, never-firing plan for components created without one."""
