"""The storage device: command front-end, bus costs, queueing, power state.

``StorageDevice`` wraps an FTL and models the host-visible interface:

- per-command fixed overhead and per-page bus transfer time (the NAND array
  time itself is charged inside the chip);
- an optional NCQ-style command queue (``queue_depth > 1``): reads and
  writes dispatch asynchronously — their flash time lands on the chip's
  per-channel timelines while the host continues — and ``flush`` /
  ``commit`` / ``abort`` drain the queue as barriers.  Depth 1 is the
  seed's fully synchronous device, bit for bit;
- the extended command set when the FTL is an :class:`~repro.ftl.XFTL`
  (tagged reads/writes, commit/abort — carried over trim in the prototype);
- an optional **barrier-enabled** mode ("Barrier Enabled IO Stack for
  Flash Storage"): ordering points become order-only *epoch closes* on the
  queue plus a dispatch-floor barrier on the chip, instead of
  drain-and-wait.  ``write_barrier`` dispatches an order-guaranteed write
  and ``barrier`` is an order-only durability point; flush/commit/abort
  keep their durability meaning but stop stalling the host on in-flight
  commands.  With ``barrier_mode=False`` (the default) every code path is
  bit-identical to the drain-based device;
- power-off / power-on with FTL recovery, used by crash experiments.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DeviceError
from repro.device.commands import DeviceCounters
from repro.device.queue import (
    CP_QUEUE_BARRIER,
    CP_QUEUE_DISPATCH,
    CP_QUEUE_EPOCH,
    CommandQueue,
)
from repro.ftl.base import Ftl
from repro.ftl.xftl import XFTL


class StorageDevice:
    """A SATA-attached SSD built from a flash chip and an FTL."""

    def __init__(
        self, ftl: Ftl, queue_depth: int = 1, barrier_mode: bool = False
    ) -> None:
        self.ftl = ftl
        self.chip = ftl.chip
        self.clock = ftl.chip.clock
        self.profile = ftl.chip.profile
        self.counters = DeviceCounters()
        self.obs = ftl.chip.obs
        if queue_depth < 1:
            raise DeviceError(f"queue depth must be >= 1, got {queue_depth}")
        if queue_depth > 1 and not self.chip.supports_overlap:
            raise DeviceError(
                "queue_depth > 1 requires a flash array with overlap support "
                "(FlashArray); the serial FlashChip cannot overlap commands"
            )
        self.queue_depth = queue_depth
        # Barrier-enabled IO stack: ordering points are order-only (epoch
        # closes + dispatch-floor barriers) instead of drain-and-wait, and
        # FTL-internal drains degrade to order barriers via the chip flag.
        self.barrier_mode = bool(barrier_mode)
        if self.barrier_mode:
            self.chip.order_only_drains = True
        # Tenant attribution rides the chip's registry (inert without
        # tenants); the queue needs it for per-tenant in-flight shares.
        self.tenants = ftl.chip.tenants
        # Depth 1 keeps the seed's synchronous command paths untouched (no
        # queue object at all), which the channel-equivalence test pins.
        self.queue = (
            CommandQueue(
                self.clock,
                queue_depth,
                self.obs,
                tenants=self.tenants,
                epochs=self.barrier_mode,
            )
            if queue_depth > 1
            else None
        )
        # Barrier accounting, plain attributes first (obs may be disabled):
        # stalls the order-only path avoided vs. what a drain would have
        # waited, and the symmetric drain-mode measurement for the rival
        # comparison (`barrier` bench experiment).
        self.stalls_avoided = 0
        self.stall_avoided_us = 0.0
        self.barrier_stalls = 0
        self.barrier_stall_us = 0.0
        # Whether anything was written/trimmed since the last full flush —
        # lets the file system skip a durability point that would order
        # nothing (the double-barrier bug in the directory-fsync path).
        self._mutated_since_flush = False
        obs = self.obs
        self._obs_reads = obs.counter("dev.reads")
        self._obs_writes = obs.counter("dev.writes")
        self._obs_trims = obs.counter("dev.trims")
        self._obs_flushes = obs.counter("dev.flushes")
        self._obs_tagged_reads = obs.counter("dev.tagged_reads")
        self._obs_tagged_writes = obs.counter("dev.tagged_writes")
        self._obs_commits = obs.counter("dev.commits")
        self._obs_aborts = obs.counter("dev.aborts")
        self._obs_barrier_writes = obs.counter("dev.barrier_writes")
        self._obs_barriers = obs.counter("dev.barriers")
        self._obs_stalls_avoided = obs.counter("dev.queue.stalls_avoided")
        self._obs_stall_avoided_us = obs.histogram("dev.queue.stall_avoided_us")
        self._obs_barrier_stalls = obs.counter("dev.queue.barrier_stalls")
        self._obs_barrier_stall_us = obs.histogram("dev.queue.barrier_stall_us")
        self._obs_flush_us = obs.histogram("dev.flush.latency_us")
        self._obs_commit_us = obs.histogram("dev.commit.latency_us")
        self._on = True
        # When an armed crash point fires the whole machine loses power:
        # mark the device off so recovery is a plain power_on() and any
        # further command raises DeviceError instead of touching dead state.
        self.chip.crash_plan.subscribe(self._crash_power_loss)

    def _crash_power_loss(self) -> None:
        self._on = False
        if self.queue is not None:
            self.queue.reset()
        # Ordering state is device DRAM too: the dispatch floor dies with
        # the power (per-channel busy horizons persist, so per-channel
        # serialization still holds through recovery).
        self.chip.dispatch_floor_us = 0.0

    # --------------------------------------------------------------- state

    @property
    def page_size(self) -> int:
        return self.chip.geometry.page_size

    @property
    def exported_pages(self) -> int:
        return self.ftl.exported_pages

    @property
    def supports_transactions(self) -> bool:
        """Whether the extended (tagged) command set is available."""
        return isinstance(self.ftl, XFTL)

    @property
    def is_on(self) -> bool:
        return self._on

    @property
    def dirty_since_flush(self) -> bool:
        """Whether any write/trim has been acknowledged since the last flush.

        False means the last durability point still covers everything the
        host ever wrote — a flush issued now would be pure overhead.
        """
        return self._mutated_since_flush

    def power_off(self) -> None:
        """Cut power: all device DRAM state is lost (in-flight queue included)."""
        if self._on:
            self.ftl.power_fail()
            self._on = False
            if self.queue is not None:
                self.queue.reset()
            self.chip.dispatch_floor_us = 0.0

    def power_on(self) -> None:
        """Restore power and run FTL mount-time recovery."""
        if not self._on:
            self.ftl.remount()
            self._on = True

    def _check_on(self) -> None:
        if not self._on:
            raise DeviceError("device is powered off")

    def _charge(self, transfers: int = 0) -> None:
        self.clock.advance(
            self.profile.command_overhead_us + transfers * self.profile.bus_transfer_us
        )

    def _dispatch(self, op: Callable[[], Any]) -> Any:
        """Issue one queued command: admit, run with deferred flash time.

        The FTL/chip state mutates now (program order); the flash durations
        accumulate on the channel timelines inside the overlap region, and
        the command stays in flight until its latest reservation completes.
        A crash point fires before dispatch whenever earlier commands are
        still outstanding — the window where power loss catches a non-empty
        queue.
        """
        queue = self.queue
        queue.admit()
        if queue.in_flight:
            self.chip.crash_plan.hit(CP_QUEUE_DISPATCH)
        with self.chip.overlap() as region:
            result = op()
        queue.push(region.end_us)
        return result

    def _drain_barrier(self) -> None:
        """Complete all in-flight commands before a flush/commit/abort."""
        queue = self.queue
        if queue is not None and queue.in_flight:
            self.chip.crash_plan.hit(CP_QUEUE_BARRIER)
            before_us = self.clock.now_us
            queue.drain()
            stalled = self.clock.now_us - before_us
            if stalled > 0.0:
                # The transfer-and-flush overhead the barrier-enabled rival
                # eliminates; measured here so drain vs. barrier runs report
                # symmetric numbers.
                self.barrier_stalls += 1
                self.barrier_stall_us += stalled
                self._obs_barrier_stalls.inc()
                self._obs_barrier_stall_us.observe(stalled)

    def _order_barrier(self) -> None:
        """Order-only ordering point: close the epoch, raise the floor.

        The barrier-enabled replacement for :meth:`_drain_barrier`: nothing
        waits — the queue seals the current epoch and the chip's dispatch
        floor rises to the horizon, so no later command can complete before
        anything already issued.  The stall a drain would have cost right
        now is recorded as avoided.
        """
        queue = self.queue
        if queue is not None:
            if queue.in_flight:
                self.chip.crash_plan.hit(CP_QUEUE_EPOCH)
                avoided = self.chip.busy_horizon_us() - self.clock.now_us
                if avoided > 0.0:
                    self.stalls_avoided += 1
                    self.stall_avoided_us += avoided
                    self._obs_stalls_avoided.inc()
                    self._obs_stall_avoided_us.observe(avoided)
            queue.close_epoch()
        self.chip.order_barrier()

    def _barrier_point(self) -> None:
        """The pre-durability ordering point flush/commit/abort go through."""
        if self.barrier_mode:
            self._order_barrier()
        else:
            self._drain_barrier()

    # ---------------------------------------------------- standard commands

    def read(self, lpn: int) -> Any:
        self._check_on()
        self.counters.reads += 1
        self._obs_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return self.ftl.read(lpn)
        return self._dispatch(lambda: self.ftl.read(lpn))

    def write(self, lpn: int, data: Any) -> None:
        self._check_on()
        self.counters.writes += 1
        self._obs_writes.inc()
        self._mutated_since_flush = True
        if self.tenants.enabled:
            self.tenants.note_write(lpn)
        with self.obs.tracer.span("write", "dev", lpn=lpn):
            self._charge(transfers=1)
            if self.queue is None:
                self.ftl.write(lpn, data)
            else:
                self._dispatch(lambda: self.ftl.write(lpn, data))

    def trim(self, lpn: int) -> None:
        self._check_on()
        self.counters.trims += 1
        self._obs_trims.inc()
        self._mutated_since_flush = True
        self._charge()
        self.ftl.trim(lpn)

    def flush(self) -> None:
        """Write barrier: all acknowledged writes + mapping state durable."""
        self._check_on()
        self.counters.flushes += 1
        self._obs_flushes.inc()
        if self.tenants.enabled:
            self.tenants.note_flush()
        start_us = self.clock.now_us
        with self.obs.tracer.span("flush", "dev"):
            self._charge()
            self._barrier_point()
            self.ftl.barrier()
        self._mutated_since_flush = False
        self._obs_flush_us.observe(self.clock.now_us - start_us)

    def barrier(self) -> None:
        """Order-only durability point (the barrier-enabled ``fdatabarrier``).

        Everything issued before is ordered before everything issued after
        — on every channel — but the host does not wait and the FTL does
        not publish a new root.  Durability of the ordered writes follows
        from the device's crash recovery (OOB replay), exactly like
        acknowledged-but-unflushed writes always have.  On a drain-mode
        device the only ordering primitive is a full flush, so it degrades
        to one.
        """
        self._check_on()
        if not self.barrier_mode:
            self.flush()
            return
        self.counters.barriers += 1
        self._obs_barriers.inc()
        if self.tenants.enabled:
            self.tenants.note_flush()
        with self.obs.tracer.span("barrier", "dev"):
            self._charge()
            self._order_barrier()

    def write_barrier(self, lpn: int, data: Any) -> None:
        """BARRIER_WRITE: an order-guaranteed write, no drain (barrier mode).

        The queue closes the current epoch, the write dispatches into an
        epoch of its own, and that epoch is closed too: every earlier write
        completes before this page and every later write after it, with no
        host stall.  This is what lets the journal drop both of its
        commit-page barriers — the commit page *is* the barrier.
        """
        self._check_on()
        if not self.barrier_mode:
            raise DeviceError(
                "barrier-write requires a barrier-enabled device "
                "(StorageDevice(..., barrier_mode=True))"
            )
        self.counters.barrier_writes += 1
        self._obs_barrier_writes.inc()
        self._mutated_since_flush = True
        if self.tenants.enabled:
            self.tenants.note_write(lpn)
        with self.obs.tracer.span("write_barrier", "dev", lpn=lpn):
            self._charge(transfers=1)
            if self.queue is None:
                self.ftl.write(lpn, data)
                self.chip.order_barrier()
            else:
                self._order_barrier()
                self._dispatch(lambda: self.ftl.write(lpn, data))
                self._order_barrier()

    # ---------------------------------------------------- extended commands

    def _require_tx(self) -> XFTL:
        if not isinstance(self.ftl, XFTL):
            raise DeviceError("device FTL does not support the extended command set")
        return self.ftl

    def read_tx(self, tid: int, lpn: int) -> Any:
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_reads += 1
        self._obs_tagged_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return ftl.read_tx(tid, lpn)
        return self._dispatch(lambda: ftl.read_tx(tid, lpn))

    def read_as_of(self, lpn: int, snapshot_seq: int) -> Any:
        """AS-OF read: the copy of ``lpn`` a snapshot pinned at
        ``snapshot_seq`` observes (multi-version X-L2P, retain_versions > 1).
        Falls back to the current committed copy when no retained version
        qualifies — including the whole retain_versions == 1 regime."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_reads += 1
        self._obs_tagged_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return ftl.read_as_of(lpn, snapshot_seq)
        return self._dispatch(lambda: ftl.read_as_of(lpn, snapshot_seq))

    def snapshot_seq(self) -> int:
        """Current commit sequence number — the pin for a new snapshot."""
        self._check_on()
        return self._require_tx().snapshot_seq()

    def set_snapshot_floor(self, floor: int | None) -> None:
        """Publish the oldest active snapshot so the FTL can reclaim
        versions no snapshot can still resolve through."""
        self._check_on()
        self._require_tx().set_snapshot_floor(floor)

    def write_tx(self, tid: int, lpn: int, data: Any) -> None:
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_writes += 1
        self._obs_tagged_writes.inc()
        self._mutated_since_flush = True
        if self.tenants.enabled:
            self.tenants.note_write(lpn)
        with self.obs.tracer.span("write_tx", "dev", lpn=lpn, tid=tid):
            self._charge(transfers=1)
            if self.queue is None:
                ftl.write_tx(tid, lpn, data)
            else:
                self._dispatch(lambda: ftl.write_tx(tid, lpn, data))

    def commit(self, tid: int) -> None:
        """commit(t), carried over the trim command's parameter set (§5.2)."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.commits += 1
        self._obs_commits.inc()
        start_us = self.clock.now_us
        with self.obs.tracer.span("commit", "dev", tid=tid):
            self._charge()
            self._barrier_point()
            ftl.commit(tid)
        self._obs_commit_us.observe(self.clock.now_us - start_us)

    def commit_group(self, tids: list[int]) -> None:
        """Vectored commit: one drain barrier serves a whole commit group.

        Each member still costs a commit command on the wire (the host
        issues one trim-carried ``commit(t)`` per transaction), but the
        queue barrier and the FTL's X-L2P flush are scoped to the group
        as a whole rather than to each transaction.
        """
        self._check_on()
        ftl = self._require_tx()
        tids = list(dict.fromkeys(tids))
        if not tids:
            return
        if len(tids) == 1:
            self.commit(tids[0])
            return
        self.counters.commits += len(tids)
        self._obs_commits.inc(len(tids))
        start_us = self.clock.now_us
        with self.obs.tracer.span("commit_group", "dev"):
            for _ in tids:
                self._charge()
            self._barrier_point()
            ftl.commit_group(tids)
        self._obs_commit_us.observe(self.clock.now_us - start_us)

    def abort(self, tid: int) -> None:
        """abort(t), carried over the trim command's parameter set (§5.2)."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.aborts += 1
        self._obs_aborts.inc()
        self._charge()
        self._barrier_point()
        ftl.abort(tid)
