"""The storage device: command front-end, bus costs, queueing, power state.

``StorageDevice`` wraps an FTL and models the host-visible interface:

- per-command fixed overhead and per-page bus transfer time (the NAND array
  time itself is charged inside the chip);
- an optional NCQ-style command queue (``queue_depth > 1``): reads and
  writes dispatch asynchronously — their flash time lands on the chip's
  per-channel timelines while the host continues — and ``flush`` /
  ``commit`` / ``abort`` drain the queue as barriers.  Depth 1 is the
  seed's fully synchronous device, bit for bit;
- the extended command set when the FTL is an :class:`~repro.ftl.XFTL`
  (tagged reads/writes, commit/abort — carried over trim in the prototype);
- power-off / power-on with FTL recovery, used by crash experiments.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DeviceError
from repro.device.commands import DeviceCounters
from repro.device.queue import CP_QUEUE_BARRIER, CP_QUEUE_DISPATCH, CommandQueue
from repro.ftl.base import Ftl
from repro.ftl.xftl import XFTL


class StorageDevice:
    """A SATA-attached SSD built from a flash chip and an FTL."""

    def __init__(self, ftl: Ftl, queue_depth: int = 1) -> None:
        self.ftl = ftl
        self.chip = ftl.chip
        self.clock = ftl.chip.clock
        self.profile = ftl.chip.profile
        self.counters = DeviceCounters()
        self.obs = ftl.chip.obs
        if queue_depth < 1:
            raise DeviceError(f"queue depth must be >= 1, got {queue_depth}")
        if queue_depth > 1 and not self.chip.supports_overlap:
            raise DeviceError(
                "queue_depth > 1 requires a flash array with overlap support "
                "(FlashArray); the serial FlashChip cannot overlap commands"
            )
        self.queue_depth = queue_depth
        # Tenant attribution rides the chip's registry (inert without
        # tenants); the queue needs it for per-tenant in-flight shares.
        self.tenants = ftl.chip.tenants
        # Depth 1 keeps the seed's synchronous command paths untouched (no
        # queue object at all), which the channel-equivalence test pins.
        self.queue = (
            CommandQueue(self.clock, queue_depth, self.obs, tenants=self.tenants)
            if queue_depth > 1
            else None
        )
        obs = self.obs
        self._obs_reads = obs.counter("dev.reads")
        self._obs_writes = obs.counter("dev.writes")
        self._obs_trims = obs.counter("dev.trims")
        self._obs_flushes = obs.counter("dev.flushes")
        self._obs_tagged_reads = obs.counter("dev.tagged_reads")
        self._obs_tagged_writes = obs.counter("dev.tagged_writes")
        self._obs_commits = obs.counter("dev.commits")
        self._obs_aborts = obs.counter("dev.aborts")
        self._obs_flush_us = obs.histogram("dev.flush.latency_us")
        self._obs_commit_us = obs.histogram("dev.commit.latency_us")
        self._on = True
        # When an armed crash point fires the whole machine loses power:
        # mark the device off so recovery is a plain power_on() and any
        # further command raises DeviceError instead of touching dead state.
        self.chip.crash_plan.subscribe(self._crash_power_loss)

    def _crash_power_loss(self) -> None:
        self._on = False
        if self.queue is not None:
            self.queue.reset()

    # --------------------------------------------------------------- state

    @property
    def page_size(self) -> int:
        return self.chip.geometry.page_size

    @property
    def exported_pages(self) -> int:
        return self.ftl.exported_pages

    @property
    def supports_transactions(self) -> bool:
        """Whether the extended (tagged) command set is available."""
        return isinstance(self.ftl, XFTL)

    @property
    def is_on(self) -> bool:
        return self._on

    def power_off(self) -> None:
        """Cut power: all device DRAM state is lost (in-flight queue included)."""
        if self._on:
            self.ftl.power_fail()
            self._on = False
            if self.queue is not None:
                self.queue.reset()

    def power_on(self) -> None:
        """Restore power and run FTL mount-time recovery."""
        if not self._on:
            self.ftl.remount()
            self._on = True

    def _check_on(self) -> None:
        if not self._on:
            raise DeviceError("device is powered off")

    def _charge(self, transfers: int = 0) -> None:
        self.clock.advance(
            self.profile.command_overhead_us + transfers * self.profile.bus_transfer_us
        )

    def _dispatch(self, op: Callable[[], Any]) -> Any:
        """Issue one queued command: admit, run with deferred flash time.

        The FTL/chip state mutates now (program order); the flash durations
        accumulate on the channel timelines inside the overlap region, and
        the command stays in flight until its latest reservation completes.
        A crash point fires before dispatch whenever earlier commands are
        still outstanding — the window where power loss catches a non-empty
        queue.
        """
        queue = self.queue
        queue.admit()
        if queue.in_flight:
            self.chip.crash_plan.hit(CP_QUEUE_DISPATCH)
        with self.chip.overlap() as region:
            result = op()
        queue.push(region.end_us)
        return result

    def _drain_barrier(self) -> None:
        """Complete all in-flight commands before a flush/commit/abort."""
        queue = self.queue
        if queue is not None and queue.in_flight:
            self.chip.crash_plan.hit(CP_QUEUE_BARRIER)
            queue.drain()

    # ---------------------------------------------------- standard commands

    def read(self, lpn: int) -> Any:
        self._check_on()
        self.counters.reads += 1
        self._obs_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return self.ftl.read(lpn)
        return self._dispatch(lambda: self.ftl.read(lpn))

    def write(self, lpn: int, data: Any) -> None:
        self._check_on()
        self.counters.writes += 1
        self._obs_writes.inc()
        if self.tenants.enabled:
            self.tenants.note_write(lpn)
        with self.obs.tracer.span("write", "dev", lpn=lpn):
            self._charge(transfers=1)
            if self.queue is None:
                self.ftl.write(lpn, data)
            else:
                self._dispatch(lambda: self.ftl.write(lpn, data))

    def trim(self, lpn: int) -> None:
        self._check_on()
        self.counters.trims += 1
        self._obs_trims.inc()
        self._charge()
        self.ftl.trim(lpn)

    def flush(self) -> None:
        """Write barrier: all acknowledged writes + mapping state durable."""
        self._check_on()
        self.counters.flushes += 1
        self._obs_flushes.inc()
        if self.tenants.enabled:
            self.tenants.note_flush()
        start_us = self.clock.now_us
        with self.obs.tracer.span("flush", "dev"):
            self._charge()
            self._drain_barrier()
            self.ftl.barrier()
        self._obs_flush_us.observe(self.clock.now_us - start_us)

    # ---------------------------------------------------- extended commands

    def _require_tx(self) -> XFTL:
        if not isinstance(self.ftl, XFTL):
            raise DeviceError("device FTL does not support the extended command set")
        return self.ftl

    def read_tx(self, tid: int, lpn: int) -> Any:
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_reads += 1
        self._obs_tagged_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return ftl.read_tx(tid, lpn)
        return self._dispatch(lambda: ftl.read_tx(tid, lpn))

    def read_as_of(self, lpn: int, snapshot_seq: int) -> Any:
        """AS-OF read: the copy of ``lpn`` a snapshot pinned at
        ``snapshot_seq`` observes (multi-version X-L2P, retain_versions > 1).
        Falls back to the current committed copy when no retained version
        qualifies — including the whole retain_versions == 1 regime."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_reads += 1
        self._obs_tagged_reads.inc()
        self._charge(transfers=1)
        if self.queue is None:
            return ftl.read_as_of(lpn, snapshot_seq)
        return self._dispatch(lambda: ftl.read_as_of(lpn, snapshot_seq))

    def snapshot_seq(self) -> int:
        """Current commit sequence number — the pin for a new snapshot."""
        self._check_on()
        return self._require_tx().snapshot_seq()

    def set_snapshot_floor(self, floor: int | None) -> None:
        """Publish the oldest active snapshot so the FTL can reclaim
        versions no snapshot can still resolve through."""
        self._check_on()
        self._require_tx().set_snapshot_floor(floor)

    def write_tx(self, tid: int, lpn: int, data: Any) -> None:
        self._check_on()
        ftl = self._require_tx()
        self.counters.tagged_writes += 1
        self._obs_tagged_writes.inc()
        if self.tenants.enabled:
            self.tenants.note_write(lpn)
        with self.obs.tracer.span("write_tx", "dev", lpn=lpn, tid=tid):
            self._charge(transfers=1)
            if self.queue is None:
                ftl.write_tx(tid, lpn, data)
            else:
                self._dispatch(lambda: ftl.write_tx(tid, lpn, data))

    def commit(self, tid: int) -> None:
        """commit(t), carried over the trim command's parameter set (§5.2)."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.commits += 1
        self._obs_commits.inc()
        start_us = self.clock.now_us
        with self.obs.tracer.span("commit", "dev", tid=tid):
            self._charge()
            self._drain_barrier()
            ftl.commit(tid)
        self._obs_commit_us.observe(self.clock.now_us - start_us)

    def commit_group(self, tids: list[int]) -> None:
        """Vectored commit: one drain barrier serves a whole commit group.

        Each member still costs a commit command on the wire (the host
        issues one trim-carried ``commit(t)`` per transaction), but the
        queue barrier and the FTL's X-L2P flush are scoped to the group
        as a whole rather than to each transaction.
        """
        self._check_on()
        ftl = self._require_tx()
        tids = list(dict.fromkeys(tids))
        if not tids:
            return
        if len(tids) == 1:
            self.commit(tids[0])
            return
        self.counters.commits += len(tids)
        self._obs_commits.inc(len(tids))
        start_us = self.clock.now_us
        with self.obs.tracer.span("commit_group", "dev"):
            for _ in tids:
                self._charge()
            self._drain_barrier()
            ftl.commit_group(tids)
        self._obs_commit_us.observe(self.clock.now_us - start_us)

    def abort(self, tid: int) -> None:
        """abort(t), carried over the trim command's parameter set (§5.2)."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.aborts += 1
        self._obs_aborts.inc()
        self._charge()
        self._drain_barrier()
        ftl.abort(tid)
