"""NCQ-style device command queue.

SATA NCQ (and every modern NVMe device) lets the host keep several commands
outstanding; the controller spreads them over its flash channels and
completes them out of band.  :class:`CommandQueue` models the host-visible
half of that: a bounded set of *in-flight* commands, each known by its
completion time on the device's channel timelines.

The simulation keeps its state-mutates-immediately style: a queued command
has already updated chip/FTL state when it is dispatched — only its *time*
is still in flight.  That matches the durability contract the crash oracle
already enforces: an acknowledged-but-unflushed write may or may not
survive power loss, and only ``flush``/``commit`` order anything.

Mechanics:

- :meth:`admit` applies backpressure: when the queue is full the host
  blocks (``clock.wait_until``) until the earliest in-flight command
  completes.  Completions are retired by clock events
  (:meth:`~repro.sim.clock.SimClock.schedule_at`), not polling.
- :meth:`push` records a dispatched command's completion time.
- :meth:`drain` is the barrier used by flush/commit/abort: the clock joins
  the latest in-flight completion and the queue empties.
- :meth:`reset` forgets all in-flight commands on power loss (their chip
  state effects stand or fall with the crash oracle's rules, exactly like
  acknowledged-but-unflushed writes always have).

Three crash points make power loss with a non-empty queue reachable from
the verification sweep: ``dev.queue.dispatch`` (a new command about to
enter a non-empty queue), ``dev.queue.barrier`` (a drain barrier arriving
while commands are still in flight) and ``dev.queue.epoch`` (an order-only
barrier closing an epoch over in-flight commands — the barrier-enabled
stack's analogue of the drain barrier).

Barrier-enabled devices construct the queue with ``epochs=True``: every
dispatched command is tagged with the current *epoch*, and an order
barrier closes the epoch instead of draining.  The chip's dispatch floor
guarantees no command of a later epoch ever completes before a command of
an earlier one; the queue records the per-epoch completion envelopes so
tests and the crash sweep can check exactly that.
"""

from __future__ import annotations

import heapq

from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.crash import register_crash_point

CP_QUEUE_DISPATCH = register_crash_point(
    "dev.queue.dispatch",
    "device.queue",
    "dispatching a command while earlier commands are still in flight",
)
CP_QUEUE_BARRIER = register_crash_point(
    "dev.queue.barrier",
    "device.queue",
    "flush/commit barrier issued with commands still in flight",
)
CP_QUEUE_EPOCH = register_crash_point(
    "dev.queue.epoch",
    "device.queue",
    "order-only barrier (epoch close) issued with commands still in flight",
)


class CommandQueue:
    """Bounded in-flight command tracker for one device.

    With a :class:`~repro.tenancy.TenantRegistry` attached and
    :meth:`set_shares` called, the queue additionally enforces
    **per-tenant in-flight caps**: a tenant whose share of the depth is
    exhausted blocks at admit until one of the outstanding commands
    completes, even while the queue as a whole has free slots — the NCQ
    half of the fairness story (a hot tenant cannot monopolize the
    device's outstanding-command budget).  Without shares the per-tenant
    bookkeeping is dictionary-only (no clock effects), so tagged and
    untagged runs stay bit-identical.
    """

    def __init__(
        self,
        clock: SimClock,
        depth: int,
        obs: Observability,
        tenants=None,
        epochs: bool = False,
    ) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.clock = clock
        self.depth = depth
        self.tenants = tenants  # TenantRegistry or None
        # Min-heap of (end_us, command id); ids make retire-by-event exact
        # even when two commands share a completion time.
        self._in_flight: list[tuple[float, int]] = []
        self._live_ids: set[int] = set()
        self._next_id = 0
        self._shares: dict[int, int] | None = None
        self._tenant_of: dict[int, int] = {}  # command id -> tenant id
        self._live_by_tenant: dict[int, int] = {}
        self.share_stalls = 0  # plain counter; obs may be disabled
        # Epoch bookkeeping (barrier-enabled devices only): every dispatched
        # command is tagged with the current epoch, and an order barrier
        # closes the epoch instead of draining.  Dispatch never reorders
        # across epochs — the chip's dispatch floor enforces the timing,
        # this records it for introspection and the crash sweep.
        self.epochs_enabled = epochs
        self._epoch = 0
        self._epoch_of: dict[int, int] = {}  # command id -> epoch
        self._epoch_bounds: dict[int, tuple[float, float]] = {}  # epoch -> (min, max) end
        self.epochs_closed = 0  # plain counter; obs may be disabled
        self._obs_depth = obs.gauge("dev.queue.depth")
        self._obs_dispatch_depth = obs.histogram("dev.queue.dispatch_depth")
        self._obs_admit_stalls = obs.counter("dev.queue.admit_stalls")
        self._obs_share_stalls = obs.counter("dev.queue.share_stalls")
        self._obs_epochs = obs.counter("dev.queue.epochs")

    def set_shares(self, shares: dict[int, int] | None) -> None:
        """Install (or clear) per-tenant in-flight caps.

        ``shares`` maps tenant id -> maximum outstanding commands, as
        produced by :meth:`~repro.tenancy.TenantRegistry.queue_shares`.
        Tenants absent from the map (including the shared lane, id 0)
        are capped only by the queue depth.
        """
        self._shares = dict(shares) if shares else None

    # -------------------------------------------------------------- queries

    @property
    def in_flight(self) -> int:
        """Commands dispatched but not yet completed (at current sim time)."""
        self._retire_due()
        return len(self._live_ids)

    @property
    def current_epoch(self) -> int:
        """The epoch new dispatches are tagged with (0 until a barrier)."""
        return self._epoch

    def epoch_bounds(self) -> list[tuple[int, float, float]]:
        """Per-epoch completion-time envelope since the last reset.

        Returns ``(epoch, min_end_us, max_end_us)`` rows in epoch order —
        the order-preservation invariant the property test asserts is
        ``min_end(E) >= max_end(E')`` for every ``E' < E``.
        """
        return [
            (epoch, lo, hi) for epoch, (lo, hi) in sorted(self._epoch_bounds.items())
        ]

    # ------------------------------------------------------------ lifecycle

    def admit(self) -> None:
        """Backpressure: block until a queue slot (and tenant share) is free."""
        self._retire_due()
        if len(self._live_ids) >= self.depth:
            self._obs_admit_stalls.inc()
            while self._in_flight and len(self._live_ids) >= self.depth:
                end_us, _ = self._in_flight[0]
                self.clock.wait_until(end_us)
                self._retire_due()
        shares = self._shares
        if shares is not None:
            tenant_id = self.tenants.current
            cap = shares.get(tenant_id)
            if cap is not None and self._live_by_tenant.get(tenant_id, 0) >= cap:
                # One stall per capped admit, however many completions it
                # takes to free a slot (the loop must not re-count).
                self.share_stalls += 1
                self._obs_share_stalls.inc()
                live = self._live_by_tenant
                while live.get(tenant_id, 0) >= cap:
                    # Wait on the stalled tenant's *own* earliest in-flight
                    # completion: a foreign command finishing can never
                    # lower this tenant's live count, so waiting on the
                    # global head would drain other tenants' work for
                    # nothing (and spin forever on a stale count with an
                    # empty share).  No own command in flight means the
                    # count cannot drop by waiting — bail out rather than
                    # wedge (cap of 0, or bookkeeping gone stale).
                    own_earliest = min(
                        (
                            end_us
                            for end_us, command_id in self._in_flight
                            if command_id in self._live_ids
                            and self._tenant_of.get(command_id) == tenant_id
                        ),
                        default=None,
                    )
                    if own_earliest is None:
                        break
                    self.clock.wait_until(own_earliest)
                    self._retire_due()
        self._obs_dispatch_depth.observe(float(len(self._live_ids)))

    def push(self, end_us: float) -> None:
        """Record a dispatched command completing at ``end_us``.

        Commands whose work already finished (``end_us`` not in the future)
        never enter the queue — they completed synchronously.
        """
        if self.epochs_enabled:
            # Record the envelope for every dispatched command (even ones
            # that completed synchronously): the order-preservation property
            # test checks the full per-epoch completion-time bounds.
            bounds = self._epoch_bounds.get(self._epoch)
            if bounds is None:
                self._epoch_bounds[self._epoch] = (end_us, end_us)
            else:
                lo, hi = bounds
                self._epoch_bounds[self._epoch] = (min(lo, end_us), max(hi, end_us))
        if end_us <= self.clock.now_us:
            return
        self._next_id += 1
        command_id = self._next_id
        heapq.heappush(self._in_flight, (end_us, command_id))
        self._live_ids.add(command_id)
        if self.epochs_enabled:
            self._epoch_of[command_id] = self._epoch
        tenants = self.tenants
        if tenants is not None and tenants.enabled:
            tenant_id = tenants.current
            self._tenant_of[command_id] = tenant_id
            self._live_by_tenant[tenant_id] = (
                self._live_by_tenant.get(tenant_id, 0) + 1
            )
        self._obs_depth.set(float(len(self._live_ids)))
        self.clock.schedule_at(end_us, lambda: self._complete(command_id))

    def close_epoch(self) -> None:
        """Seal the current epoch: later dispatches are ordered after it.

        The timing half of the guarantee lives in the chip's dispatch
        floor (raised by ``chip.order_barrier()``); this is the queue-side
        bookkeeping.  Closing an empty epoch is a no-op — there is nothing
        to order against, and barriers must stay idempotent.
        """
        if not self.epochs_enabled:
            return
        if self._epoch not in self._epoch_bounds:
            return
        self._epoch += 1
        self.epochs_closed += 1
        self._obs_epochs.inc()

    def drain(self) -> None:
        """Barrier: the host waits for every in-flight command to complete."""
        while self._in_flight:
            latest = max(end for end, _ in self._in_flight)
            self.clock.wait_until(latest)
            self._retire_due()
        self._obs_depth.set(0.0)

    def reset(self) -> None:
        """Power loss: forget all in-flight commands without waiting.

        Everything keyed by command id must go in one step — the in-flight
        heap, the live set, the per-tenant live counts (a stale count would
        wedge share-capped dispatch forever) and the epoch tags.  Only
        ``_next_id`` survives, so stale completion events can never collide
        with post-recovery commands.
        """
        self._in_flight.clear()
        self._live_ids.clear()
        self._tenant_of.clear()
        self._live_by_tenant.clear()
        self._epoch = 0
        self._epoch_of.clear()
        self._epoch_bounds.clear()
        self._obs_depth.set(0.0)

    # ------------------------------------------------------------ internals

    def _forget(self, command_id: int) -> None:
        """Drop a command from the live set exactly once (tenant count too)."""
        if command_id in self._live_ids:
            self._live_ids.remove(command_id)
            self._epoch_of.pop(command_id, None)
            tenant_id = self._tenant_of.pop(command_id, None)
            if tenant_id is not None:
                self._live_by_tenant[tenant_id] -= 1

    def _complete(self, command_id: int) -> None:
        """Clock-event completion; stale events (post-reset) are no-ops."""
        self._forget(command_id)
        self._retire_due()
        self._obs_depth.set(float(len(self._live_ids)))

    def _retire_due(self) -> None:
        now = self.clock.now_us
        while self._in_flight and (
            self._in_flight[0][0] <= now or self._in_flight[0][1] not in self._live_ids
        ):
            _, command_id = heapq.heappop(self._in_flight)
            self._forget(command_id)
