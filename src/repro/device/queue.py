"""NCQ-style device command queue.

SATA NCQ (and every modern NVMe device) lets the host keep several commands
outstanding; the controller spreads them over its flash channels and
completes them out of band.  :class:`CommandQueue` models the host-visible
half of that: a bounded set of *in-flight* commands, each known by its
completion time on the device's channel timelines.

The simulation keeps its state-mutates-immediately style: a queued command
has already updated chip/FTL state when it is dispatched — only its *time*
is still in flight.  That matches the durability contract the crash oracle
already enforces: an acknowledged-but-unflushed write may or may not
survive power loss, and only ``flush``/``commit`` order anything.

Mechanics:

- :meth:`admit` applies backpressure: when the queue is full the host
  blocks (``clock.wait_until``) until the earliest in-flight command
  completes.  Completions are retired by clock events
  (:meth:`~repro.sim.clock.SimClock.schedule_at`), not polling.
- :meth:`push` records a dispatched command's completion time.
- :meth:`drain` is the barrier used by flush/commit/abort: the clock joins
  the latest in-flight completion and the queue empties.
- :meth:`reset` forgets all in-flight commands on power loss (their chip
  state effects stand or fall with the crash oracle's rules, exactly like
  acknowledged-but-unflushed writes always have).

Two crash points make power loss with a non-empty queue reachable from the
verification sweep: ``dev.queue.dispatch`` (a new command about to enter a
non-empty queue) and ``dev.queue.barrier`` (a barrier arriving while
commands are still in flight).
"""

from __future__ import annotations

import heapq

from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.crash import register_crash_point

CP_QUEUE_DISPATCH = register_crash_point(
    "dev.queue.dispatch",
    "device.queue",
    "dispatching a command while earlier commands are still in flight",
)
CP_QUEUE_BARRIER = register_crash_point(
    "dev.queue.barrier",
    "device.queue",
    "flush/commit barrier issued with commands still in flight",
)


class CommandQueue:
    """Bounded in-flight command tracker for one device."""

    def __init__(self, clock: SimClock, depth: int, obs: Observability) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.clock = clock
        self.depth = depth
        # Min-heap of (end_us, command id); ids make retire-by-event exact
        # even when two commands share a completion time.
        self._in_flight: list[tuple[float, int]] = []
        self._live_ids: set[int] = set()
        self._next_id = 0
        self._obs_depth = obs.gauge("dev.queue.depth")
        self._obs_dispatch_depth = obs.histogram("dev.queue.dispatch_depth")
        self._obs_admit_stalls = obs.counter("dev.queue.admit_stalls")

    # -------------------------------------------------------------- queries

    @property
    def in_flight(self) -> int:
        """Commands dispatched but not yet completed (at current sim time)."""
        self._retire_due()
        return len(self._live_ids)

    # ------------------------------------------------------------ lifecycle

    def admit(self) -> None:
        """Backpressure: block until a queue slot is free."""
        self._retire_due()
        if len(self._live_ids) >= self.depth:
            self._obs_admit_stalls.inc()
            while self._in_flight and len(self._live_ids) >= self.depth:
                end_us, _ = self._in_flight[0]
                self.clock.wait_until(end_us)
                self._retire_due()
        self._obs_dispatch_depth.observe(float(len(self._live_ids)))

    def push(self, end_us: float) -> None:
        """Record a dispatched command completing at ``end_us``.

        Commands whose work already finished (``end_us`` not in the future)
        never enter the queue — they completed synchronously.
        """
        if end_us <= self.clock.now_us:
            return
        self._next_id += 1
        command_id = self._next_id
        heapq.heappush(self._in_flight, (end_us, command_id))
        self._live_ids.add(command_id)
        self._obs_depth.set(float(len(self._live_ids)))
        self.clock.schedule_at(end_us, lambda: self._complete(command_id))

    def drain(self) -> None:
        """Barrier: the host waits for every in-flight command to complete."""
        while self._in_flight:
            latest = max(end for end, _ in self._in_flight)
            self.clock.wait_until(latest)
            self._retire_due()
        self._obs_depth.set(0.0)

    def reset(self) -> None:
        """Power loss: forget all in-flight commands without waiting."""
        self._in_flight.clear()
        self._live_ids.clear()
        self._obs_depth.set(0.0)

    # ------------------------------------------------------------ internals

    def _complete(self, command_id: int) -> None:
        """Clock-event completion; stale events (post-reset) are no-ops."""
        self._live_ids.discard(command_id)
        self._retire_due()
        self._obs_depth.set(float(len(self._live_ids)))

    def _retire_due(self) -> None:
        now = self.clock.now_us
        while self._in_flight and (
            self._in_flight[0][0] <= now or self._in_flight[0][1] not in self._live_ids
        ):
            _, command_id = heapq.heappop(self._in_flight)
            self._live_ids.discard(command_id)
