"""eMMC-style transport for the extended command set (§5.2, footnote 2).

The paper's SATA prototype smuggles ``commit(t)``/``abort(t)`` through the
trim command's parameter set because SATA's command space is closed.  eMMC
— the storage interface actually used in smartphones — supports
application-specific commands (JEDEC 4.5.1), so the transactional verbs can
be first-class. :class:`EmmcDevice` models that: the same FTL behaviour,
but commit/abort are native commands with their own (lower) command
overhead instead of trim round-trips, and a counter records that no trim
piggybacking happened.

This matters for the paper's deployment story (X-FTL inside phone eMMC
parts with 8-16 KB of X-L2P SRAM) and gives the ablation suite a transport
to compare against the SATA prototype.
"""

from __future__ import annotations

from repro.device.ssd import StorageDevice
from repro.ftl.base import Ftl

# App-specific commands skip the trim-parameter marshalling the SATA
# prototype needs: a single short command phase.
EMMC_APP_COMMAND_OVERHEAD_US = 25.0


class EmmcDevice(StorageDevice):
    """A storage device whose transactional verbs are native commands."""

    def __init__(self, ftl: Ftl) -> None:
        super().__init__(ftl)
        self.app_commands = 0  # native CMD55/CMD56-style commands issued

    def _charge_app_command(self) -> None:
        self.app_commands += 1
        self.clock.advance(EMMC_APP_COMMAND_OVERHEAD_US)

    def commit(self, tid: int) -> None:
        """commit(t) as a native application-specific command."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.commits += 1
        self._charge_app_command()
        ftl.commit(tid)

    def abort(self, tid: int) -> None:
        """abort(t) as a native application-specific command."""
        self._check_on()
        ftl = self._require_tx()
        self.counters.aborts += 1
        self._charge_app_command()
        ftl.abort(tid)
