"""Device command vocabulary and counters.

The paper extends the SATA command set (§4.2): read/write gain a transaction
id, and ``commit``/``abort`` are added by extending the parameter set of the
trim command (§5.2).  :class:`CommandKind` enumerates the full vocabulary;
:class:`DeviceCounters` tallies commands processed by a device, which the
benchmark harness reports alongside FTL-side statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields


class CommandKind(enum.Enum):
    """Every command the simulated device understands."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"
    FLUSH = "flush"  # write barrier / FUA
    READ_TX = "read(t,p)"  # extended: tagged read
    WRITE_TX = "write(t,p)"  # extended: tagged write
    COMMIT = "commit(t)"  # extended: via trim parameter set
    ABORT = "abort(t)"  # extended: via trim parameter set
    BARRIER_WRITE = "barrier-write"  # barrier-enabled stack: ordered, no drain
    BARRIER = "barrier"  # barrier-enabled stack: order-only durability point


@dataclass
class DeviceCounters:
    """Commands processed since device creation (or a snapshot)."""

    reads: int = 0
    writes: int = 0
    trims: int = 0
    flushes: int = 0
    tagged_reads: int = 0
    tagged_writes: int = 0
    commits: int = 0
    aborts: int = 0
    barrier_writes: int = 0
    barriers: int = 0

    def snapshot(self) -> "DeviceCounters":
        return DeviceCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "DeviceCounters") -> "DeviceCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return DeviceCounters(
            **{f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)}
        )

    def diff(self, earlier: "DeviceCounters") -> "DeviceCounters":
        """Alias of :meth:`delta`, kept for existing callers."""
        return self.delta(earlier)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
