"""Storage device: the SATA-level front-end over an FTL."""

from repro.device.commands import CommandKind, DeviceCounters
from repro.device.emmc import EmmcDevice
from repro.device.queue import CommandQueue
from repro.device.ssd import StorageDevice
from repro.device.tracing import DeviceTrace, TraceEvent, TracingDevice

__all__ = [
    "CommandKind",
    "CommandQueue",
    "DeviceCounters",
    "StorageDevice",
    "EmmcDevice",
    "TracingDevice",
    "DeviceTrace",
    "TraceEvent",
]
