"""Device-level I/O tracing (a blktrace for the simulated stack).

Wrap any :class:`~repro.device.ssd.StorageDevice` in a
:class:`TracingDevice` and every command is recorded with its simulated
timestamp and duration.  Traces can be filtered, summarized, or dumped as
text — the tool used to debug every fsync-pattern discrepancy between this
reproduction and Figure 1 of the paper.

    device = TracingDevice(StorageDevice(XFTL(chip)))
    ... run workload ...
    print(device.trace.summary())
    for event in device.trace.events_of(CommandKind.COMMIT):
        print(event)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.device.commands import CommandKind
from repro.device.ssd import StorageDevice


@dataclass(frozen=True)
class TraceEvent:
    """One traced device command."""

    seq: int
    kind: CommandKind
    lpn: int | None
    tid: int | None
    start_us: float
    duration_us: float

    def __str__(self) -> str:
        lpn = "" if self.lpn is None else f" lpn={self.lpn}"
        tid = "" if self.tid is None else f" tid={self.tid}"
        return (
            f"[{self.start_us / 1000.0:10.3f} ms] {self.kind.value:12s}"
            f"{lpn}{tid} ({self.duration_us:.0f} us)"
        )


class DeviceTrace:
    """An ordered list of trace events with query helpers."""

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def append(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(event)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def events_of(self, kind: CommandKind) -> list[TraceEvent]:
        """All events of one command kind, in order."""
        return [event for event in self._events if event.kind is kind]

    def events_between(self, start_us: float, end_us: float) -> list[TraceEvent]:
        """Events whose start time falls in [start_us, end_us)."""
        return [e for e in self._events if start_us <= e.start_us < end_us]

    def busy_us(self) -> float:
        """Total device time across all traced commands."""
        return sum(event.duration_us for event in self._events)

    def summary(self) -> str:
        """Per-command-kind counts and total time, as a text block."""
        lines = ["device trace summary:"]
        for kind in CommandKind:
            events = self.events_of(kind)
            if not events:
                continue
            total_ms = sum(e.duration_us for e in events) / 1000.0
            lines.append(f"  {kind.value:12s} {len(events):8d} commands  {total_ms:10.2f} ms")
        if self.dropped:
            lines.append(f"  ({self.dropped} events dropped: capacity reached)")
        return "\n".join(lines)


class TracingDevice:
    """Transparent tracing wrapper around a storage device.

    Exposes the full device interface; every command is timed against the
    simulated clock and appended to :attr:`trace`.
    """

    def __init__(self, inner: StorageDevice, capacity: int | None = 100_000) -> None:
        self.inner = inner
        self.trace = DeviceTrace(capacity=capacity)
        self._seq = 0

    # Pass-through attributes commonly used by the fs layer.
    @property
    def clock(self):
        """The shared simulation clock."""
        return self.inner.clock

    @property
    def profile(self):
        """The device's latency profile."""
        return self.inner.profile

    @property
    def page_size(self) -> int:
        """Bytes per logical page."""
        return self.inner.page_size

    @property
    def exported_pages(self) -> int:
        """Logical pages visible to the host."""
        return self.inner.exported_pages

    @property
    def supports_transactions(self) -> bool:
        """Whether the extended command set is available."""
        return self.inner.supports_transactions

    @property
    def ftl(self):
        """The wrapped device's FTL."""
        return self.inner.ftl

    @property
    def chip(self):
        """The wrapped device's flash chip."""
        return self.inner.chip

    @property
    def counters(self):
        """The wrapped device's command counters."""
        return self.inner.counters

    @property
    def obs(self):
        """The wrapped device's observability handle."""
        return self.inner.obs

    @property
    def is_on(self) -> bool:
        """Whether the device is powered."""
        return self.inner.is_on

    def power_off(self) -> None:
        """Cut power on the wrapped device."""
        self.inner.power_off()

    def power_on(self) -> None:
        """Restore power on the wrapped device (runs recovery)."""
        self.inner.power_on()

    # ------------------------------------------------------------ commands

    def _timed(self, kind: CommandKind, lpn: int | None, tid: int | None, call) -> Any:
        start = self.inner.clock.now_us
        result = call()
        self._seq += 1
        self.trace.append(
            TraceEvent(
                seq=self._seq,
                kind=kind,
                lpn=lpn,
                tid=tid,
                start_us=start,
                duration_us=self.inner.clock.now_us - start,
            )
        )
        return result

    def read(self, lpn: int) -> Any:
        """Traced plain read."""
        return self._timed(CommandKind.READ, lpn, None, lambda: self.inner.read(lpn))

    def write(self, lpn: int, data: Any) -> None:
        """Traced plain write."""
        return self._timed(CommandKind.WRITE, lpn, None, lambda: self.inner.write(lpn, data))

    def trim(self, lpn: int) -> None:
        """Traced trim."""
        return self._timed(CommandKind.TRIM, lpn, None, lambda: self.inner.trim(lpn))

    def flush(self) -> None:
        """Traced write barrier."""
        return self._timed(CommandKind.FLUSH, None, None, self.inner.flush)

    def read_tx(self, tid: int, lpn: int) -> Any:
        """Traced tagged read."""
        return self._timed(
            CommandKind.READ_TX, lpn, tid, lambda: self.inner.read_tx(tid, lpn)
        )

    def write_tx(self, tid: int, lpn: int, data: Any) -> None:
        """Traced tagged write."""
        return self._timed(
            CommandKind.WRITE_TX, lpn, tid, lambda: self.inner.write_tx(tid, lpn, data)
        )

    def commit(self, tid: int) -> None:
        """Traced commit(t)."""
        return self._timed(CommandKind.COMMIT, None, tid, lambda: self.inner.commit(tid))

    def abort(self, tid: int) -> None:
        """Traced abort(t)."""
        return self._timed(CommandKind.ABORT, None, tid, lambda: self.inner.abort(tid))
